//! Post-MMSE SINR evaluation at a receiver.
//!
//! "On the receiving side, hosts use a Minimum Mean Square Error filter to
//! maximize the received power without amplifying noise" (section 4.1).
//! Given the *true* channels (precoders were computed from noisy estimates),
//! this module computes the per-stream, per-subcarrier SINR each client
//! actually experiences, including transmit-EVM noise and the carrier
//! leakage of dropped subcarriers.

use crate::precoder::{LinkPrecoding, TxPowers};
use copa_channel::{FreqChannel, Impairments};
use copa_num::batch::{inverse_loaded_batch_into, CBatch, LuBatchScratch};
use copa_num::complex::ONE;
use copa_num::matrix::CMat;
use copa_num::solve::{inverse_loaded_into, LuScratch};
use copa_num::C64;
use copa_phy::ofdm::DATA_SUBCARRIERS;

/// Buffers for one transmitter's covariance contribution.
#[derive(Clone, Debug, Default)]
struct CovScratch {
    /// Effective transmitted matrix `P diag(sqrt(p))`.
    txm: CMat,
    /// `H * txm` (received signal matrix).
    b: CMat,
    /// `b^H`.
    bh: CMat,
    /// `b * b^H`.
    bbh: CMat,
    /// Per-antenna transmitted powers.
    pant: Vec<f64>,
    /// EVM noise diagonal.
    diag: CMat,
    /// `H * diag`.
    hd: CMat,
    /// `H^H`.
    hh: CMat,
    /// `H * diag * H^H` (EVM term).
    hdh: CMat,
    /// `H * H^H` (leakage term).
    hhh: CMat,
}

/// Batched (one lane per subcarrier) counterpart of [`CovScratch`].
#[derive(Clone, Debug, Default)]
struct CovBatchScratch {
    /// Effective transmitted matrices `P diag(sqrt(p))`, all lanes.
    txm: CBatch,
    /// `H * txm` per lane.
    b: CBatch,
    bh: CBatch,
    bbh: CBatch,
    /// Lanes whose EVM term is non-zero (any antenna transmitting).
    evm_mask: Vec<bool>,
    /// EVM noise diagonals per lane.
    diag: CBatch,
    hd: CBatch,
    hh: CBatch,
    hdh: CBatch,
    hhh: CBatch,
    /// Lanes that are dropped subcarriers (leakage applies).
    drop_mask: Vec<bool>,
}

/// Reusable working storage for [`mmse_sinr_grid_with`]: every temporary of
/// the per-subcarrier MMSE chain, owned once per worker and reused across
/// subcarriers, strategies and topologies.
#[derive(Clone, Debug, Default)]
pub struct SinrScratch {
    cov_scratch: CovScratch,
    /// One transmitter's covariance contribution.
    cov: CMat,
    /// Base covariance (noise + own EVM + interferer).
    base: CMat,
    /// Own effective transmitted matrix.
    txm: CMat,
    /// Received stream signatures `H * txm`.
    a: CMat,
    /// Per-stream covariance `R_k`.
    rk: CMat,
    /// Interfering stream signature and products.
    aj: CMat,
    ajh: CMat,
    ajajh: CMat,
    /// Desired stream signature and products.
    ak: CMat,
    akh: CMat,
    t1: CMat,
    t2: CMat,
    /// LU working storage and the inverse.
    lu: LuScratch,
    rinv: CMat,
    /// Batched-path temporaries (SoA, one lane per subcarrier).
    cov_batch: CovBatchScratch,
    cov_b: CBatch,
    base_b: CBatch,
    txm_b: CBatch,
    h_own_b: CBatch,
    h_int_b: CBatch,
    a_b: CBatch,
    rk_b: CBatch,
    aj_b: CBatch,
    ajh_b: CBatch,
    ajajh_b: CBatch,
    ak_b: CBatch,
    akh_b: CBatch,
    t1_b: CBatch,
    t2_b: CBatch,
    lu_b: LuBatchScratch,
    rinv_b: CBatch,
}

impl SinrScratch {
    /// A fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One transmitter as seen from a particular receiver: the true channel to
/// that receiver plus what the transmitter is sending.
pub struct TxSide<'a> {
    /// True channel from this AP to the receiver being evaluated.
    pub channel: &'a FreqChannel,
    /// The AP's precoder.
    pub precoding: &'a LinkPrecoding,
    /// The AP's power allocation.
    pub powers: &'a TxPowers,
    /// The AP's total power budget in mW (sets the leakage reference).
    pub budget_mw: f64,
}

impl<'a> TxSide<'a> {
    /// Effective transmitted matrix `P diag(sqrt(p))` on subcarrier `s`
    /// (tx x streams), written into `out`.
    fn tx_matrix_into(&self, s: usize, out: &mut CMat) {
        let p = &self.precoding.precoder[s];
        out.reset(p.rows(), p.cols());
        for i in 0..p.rows() {
            for k in 0..p.cols() {
                out[(i, k)] = p[(i, k)].scale(self.powers.powers[k][s].sqrt());
            }
        }
    }

    /// Covariance contribution of this transmitter at the receiver on
    /// subcarrier `s` (allocating convenience wrapper; see
    /// [`TxSide::covariance_into`]).
    fn covariance(&self, s: usize, imp: &Impairments, include_signal: bool) -> CMat {
        let mut ws = CovScratch::default();
        let mut r = CMat::default();
        self.covariance_into(s, imp, include_signal, &mut ws, &mut r);
        r
    }

    // alloc-free: begin covariance_into (per-subcarrier kernel -- no Vec::new / vec!)
    /// Covariance contribution of this transmitter at the receiver on
    /// subcarrier `s`, *excluding* the desired-signal columns unless
    /// `include_signal` (excluded when this is the receiver's own AP).
    /// Written into `r` using only caller-owned buffers.
    fn covariance_into(
        &self,
        s: usize,
        imp: &Impairments,
        include_signal: bool,
        ws: &mut CovScratch,
        r: &mut CMat,
    ) {
        let h = self.channel.at(s);
        let rx = h.rows();
        r.reset(rx, rx);
        self.tx_matrix_into(s, &mut ws.txm);

        if include_signal {
            h.mul_into(&ws.txm, &mut ws.b);
            ws.b.hermitian_into(&mut ws.bh);
            ws.b.mul_into(&ws.bh, &mut ws.bbh);
            r.add_in_place(&ws.bbh);
        }

        // Transmit EVM: unprecoded noise radiated per antenna.
        let evm = imp.evm_factor();
        if evm > 0.0 {
            let pw = &mut ws.pant;
            pw.clear();
            pw.extend((0..ws.txm.rows()).map(|i| {
                (0..ws.txm.cols())
                    .map(|k| ws.txm[(i, k)].norm_sqr())
                    .sum::<f64>()
            }));
            if pw.iter().any(|&p| p > 0.0) {
                ws.diag.reset(pw.len(), pw.len());
                for (i, &p) in pw.iter().enumerate() {
                    ws.diag[(i, i)] = C64::real(p * evm);
                }
                h.mul_into(&ws.diag, &mut ws.hd);
                h.hermitian_into(&mut ws.hh);
                ws.hd.mul_into(&ws.hh, &mut ws.hdh);
                r.add_in_place(&ws.hdh);
            }
        }

        // Carrier leakage: a dropped subcarrier still radiates
        // `leakage_db` below the average per-subcarrier level,
        // omnidirectionally (unprecoded).
        if self.powers.is_dropped(s) {
            let leak_mw = imp.leakage_factor() * self.budget_mw / DATA_SUBCARRIERS as f64;
            if leak_mw > 0.0 {
                let per_ant = leak_mw / h.cols() as f64;
                h.hermitian_into(&mut ws.hh);
                h.mul_into(&ws.hh, &mut ws.hhh);
                for (dst, src) in r.as_mut_slice().iter_mut().zip(ws.hhh.as_slice()) {
                    *dst = *dst + src.scale(per_ant);
                }
            }
        }
    }
    // alloc-free: end covariance_into

    // alloc-free: begin covariance_batch (batched subcarrier kernels -- no Vec::new / vec!)
    /// Batched [`TxSide::tx_matrix_into`]: one lane per subcarrier, each
    /// entry computed with the exact scalar op (`p * sqrt(power)`).
    fn tx_matrix_batch_into(&self, out: &mut CBatch) {
        let n_sub = self.precoding.precoder.len();
        let p0 = &self.precoding.precoder[0];
        out.reset(p0.rows(), p0.cols(), n_sub);
        for (l, p) in self.precoding.precoder.iter().enumerate() {
            for i in 0..p.rows() {
                for k in 0..p.cols() {
                    out.set(i, k, l, p[(i, k)].scale(self.powers.powers[k][l].sqrt()));
                }
            }
        }
    }

    /// Batched [`TxSide::covariance_into`] over all subcarrier lanes of the
    /// pre-gathered channel `h_b`. Per-subcarrier branches of the scalar
    /// path (EVM active, dropped-subcarrier leakage) become per-lane masks
    /// on the adds, so every lane accumulates exactly the scalar terms in
    /// the scalar order.
    fn covariance_batch_into(
        &self,
        imp: &Impairments,
        include_signal: bool,
        h_b: &CBatch,
        ws: &mut CovBatchScratch,
        r: &mut CBatch,
    ) {
        let rx = h_b.rows();
        let lanes = h_b.lanes();
        r.reset(rx, rx, lanes);
        self.tx_matrix_batch_into(&mut ws.txm);

        if include_signal {
            h_b.mul_into(&ws.txm, &mut ws.b);
            ws.b.hermitian_into(&mut ws.bh);
            ws.b.mul_into(&ws.bh, &mut ws.bbh);
            r.add_in_place(&ws.bbh);
        }

        // Transmit EVM: unprecoded noise radiated per antenna.
        let evm = imp.evm_factor();
        if evm > 0.0 {
            let nt = ws.txm.rows();
            ws.diag.reset(nt, nt, lanes);
            ws.evm_mask.clear();
            ws.evm_mask.resize(lanes, false);
            for l in 0..lanes {
                let mut any = false;
                for i in 0..nt {
                    let p: f64 = (0..ws.txm.cols())
                        .map(|k| ws.txm.get(i, k, l).norm_sqr())
                        .sum();
                    if p > 0.0 {
                        any = true;
                    }
                    ws.diag.set(i, i, l, C64::real(p * evm));
                }
                ws.evm_mask[l] = any;
            }
            if ws.evm_mask.iter().any(|&m| m) {
                h_b.mul_into(&ws.diag, &mut ws.hd);
                h_b.hermitian_into(&mut ws.hh);
                ws.hd.mul_into(&ws.hh, &mut ws.hdh);
                r.add_in_place_masked(&ws.hdh, &ws.evm_mask);
            }
        }

        // Carrier leakage on dropped subcarriers, per-lane masked.
        let leak_mw = imp.leakage_factor() * self.budget_mw / DATA_SUBCARRIERS as f64;
        if leak_mw > 0.0 {
            ws.drop_mask.clear();
            ws.drop_mask.resize(lanes, false);
            let mut any = false;
            for (l, m) in ws.drop_mask.iter_mut().enumerate() {
                *m = self.powers.is_dropped(l);
                any |= *m;
            }
            if any {
                let per_ant = leak_mw / h_b.cols() as f64;
                h_b.hermitian_into(&mut ws.hh);
                h_b.mul_into(&ws.hh, &mut ws.hhh);
                r.add_scaled_in_place_masked(&ws.hhh, per_ant, &ws.drop_mask);
            }
        }
    }
    // alloc-free: end covariance_batch
}

/// Per-stream post-MMSE SINR grid (`[stream][subcarrier]`, linear) at the
/// receiver served by `own`, with optional concurrent `interferer`.
///
/// For each stream `k` with received signature `a_k = H P_k sqrt(p_k)`:
/// `SINR_k = a_k^H R_k^{-1} a_k`, where `R_k` collects thermal noise, the
/// other streams of the own AP, all of the interferer's signal, and both
/// transmitters' EVM/leakage noise. This is the standard MMSE output SINR.
pub fn mmse_sinr_grid(
    own: &TxSide,
    interferer: Option<&TxSide>,
    noise_mw: f64,
    imp: &Impairments,
) -> Vec<Vec<f64>> {
    let mut ws = SinrScratch::new();
    let mut grid = Vec::new();
    mmse_sinr_grid_with(own, interferer, noise_mw, imp, &mut ws, &mut grid);
    grid
}

// alloc-free: begin mmse_sinr_grid_with (per-subcarrier kernel -- no Vec::new / vec!)
/// [`mmse_sinr_grid`] writing into caller-owned buffers: `ws` holds every
/// matrix temporary and `grid` is reshaped in place. After warm-up the whole
/// MMSE chain runs without heap allocation.
///
/// Batched implementation: channels are gathered once into SoA lanes and
/// every step of the scalar chain (covariances, stream signatures, `R_k`
/// assembly, loaded inversion, quadratic form) runs across all 52 lanes at
/// once. Per lane the op sequence is exactly the scalar one, so the grid is
/// bit-identical to [`mmse_sinr_grid_scalar_with`]. Lanes whose stream power
/// is zero are computed but not written back, matching the scalar skip.
pub fn mmse_sinr_grid_with(
    own: &TxSide,
    interferer: Option<&TxSide>,
    noise_mw: f64,
    imp: &Impairments,
    ws: &mut SinrScratch,
    grid: &mut Vec<Vec<f64>>,
) {
    let streams = own.precoding.streams();
    let rx = own.channel.rx();
    grid.truncate(streams);
    grid.resize_with(streams, Vec::new);
    for row in grid.iter_mut() {
        row.clear();
        row.resize(DATA_SUBCARRIERS, 0.0);
    }

    let lanes = DATA_SUBCARRIERS;
    ws.h_own_b.reset(rx, own.channel.tx(), lanes);
    for (s, h) in own.channel.iter().enumerate() {
        ws.h_own_b.load_lane(s, h);
    }

    // Base covariance: thermal noise + own EVM + interferer everything.
    ws.base_b.reset(rx, rx, lanes);
    for i in 0..rx {
        for l in 0..lanes {
            ws.base_b.set(i, i, l, ONE.scale(noise_mw));
        }
    }
    own.covariance_batch_into(imp, false, &ws.h_own_b, &mut ws.cov_batch, &mut ws.cov_b);
    ws.base_b.add_in_place(&ws.cov_b);
    if let Some(int) = interferer {
        ws.h_int_b.reset(int.channel.rx(), int.channel.tx(), lanes);
        for (s, h) in int.channel.iter().enumerate() {
            ws.h_int_b.load_lane(s, h);
        }
        int.covariance_batch_into(imp, true, &ws.h_int_b, &mut ws.cov_batch, &mut ws.cov_b);
        ws.base_b.add_in_place(&ws.cov_b);
    }

    own.tx_matrix_batch_into(&mut ws.txm_b);
    ws.h_own_b.mul_into(&ws.txm_b, &mut ws.a_b); // rx x streams per lane
    for k in 0..streams {
        if own.powers.powers[k].iter().all(|&p| p <= 0.0) {
            continue;
        }
        // R_k = base + sum_{j != k} a_j a_j^H, all lanes at once.
        ws.rk_b.copy_from(&ws.base_b);
        for j in 0..streams {
            if j == k {
                continue;
            }
            ws.a_b.column_into(j, &mut ws.aj_b);
            ws.aj_b.hermitian_into(&mut ws.ajh_b);
            ws.aj_b.mul_into(&ws.ajh_b, &mut ws.ajajh_b);
            ws.rk_b.add_in_place(&ws.ajajh_b);
        }
        ws.a_b.column_into(k, &mut ws.ak_b);
        inverse_loaded_batch_into(
            &ws.rk_b,
            noise_mw.max(1e-18) * 1e-9,
            &mut ws.lu_b,
            &mut ws.rinv_b,
        );
        ws.ak_b.hermitian_into(&mut ws.akh_b);
        ws.akh_b.mul_into(&ws.rinv_b, &mut ws.t1_b);
        ws.t1_b.mul_into(&ws.ak_b, &mut ws.t2_b);
        for s in 0..lanes {
            if own.powers.powers[k][s] <= 0.0 {
                continue;
            }
            grid[k][s] = ws.t2_b.get(0, 0, s).re.max(0.0);
        }
    }
}

/// The original per-subcarrier scalar path, kept callable for the
/// batched-vs-scalar bit-identity gates (`--simd-smoke`, determinism
/// suite). Semantics and output are identical to [`mmse_sinr_grid_with`].
pub fn mmse_sinr_grid_scalar_with(
    own: &TxSide,
    interferer: Option<&TxSide>,
    noise_mw: f64,
    imp: &Impairments,
    ws: &mut SinrScratch,
    grid: &mut Vec<Vec<f64>>,
) {
    let streams = own.precoding.streams();
    let rx = own.channel.rx();
    grid.truncate(streams);
    grid.resize_with(streams, Vec::new);
    for row in grid.iter_mut() {
        row.clear();
        row.resize(DATA_SUBCARRIERS, 0.0);
    }

    for s in 0..DATA_SUBCARRIERS {
        // Base covariance: thermal noise + own EVM + interferer everything.
        ws.base.reset(rx, rx);
        for i in 0..rx {
            ws.base[(i, i)] = ONE.scale(noise_mw);
        }
        own.covariance_into(s, imp, false, &mut ws.cov_scratch, &mut ws.cov);
        ws.base.add_in_place(&ws.cov);
        if let Some(int) = interferer {
            int.covariance_into(s, imp, true, &mut ws.cov_scratch, &mut ws.cov);
            ws.base.add_in_place(&ws.cov);
        }

        own.tx_matrix_into(s, &mut ws.txm);
        own.channel.at(s).mul_into(&ws.txm, &mut ws.a); // rx x streams
        for k in 0..streams {
            if own.powers.powers[k][s] <= 0.0 {
                continue;
            }
            // R_k = base + sum_{j != k} a_j a_j^H.
            ws.rk.copy_from(&ws.base);
            for j in 0..streams {
                if j == k {
                    continue;
                }
                ws.a.column_into(j, &mut ws.aj);
                ws.aj.hermitian_into(&mut ws.ajh);
                ws.aj.mul_into(&ws.ajh, &mut ws.ajajh);
                ws.rk.add_in_place(&ws.ajajh);
            }
            ws.a.column_into(k, &mut ws.ak);
            inverse_loaded_into(&ws.rk, noise_mw.max(1e-18) * 1e-9, &mut ws.lu, &mut ws.rinv);
            ws.ak.hermitian_into(&mut ws.akh);
            ws.akh.mul_into(&ws.rinv, &mut ws.t1);
            ws.t1.mul_into(&ws.ak, &mut ws.t2);
            let sinr = ws.t2[(0, 0)];
            grid[k][s] = sinr.re.max(0.0);
        }
    }
}
// alloc-free: end mmse_sinr_grid_with

/// Total received power (mW, summed over receive antennas) from a
/// transmitter on each subcarrier -- the paper's INR / signal-power
/// measurements (Figures 3 and 9).
pub fn received_power_per_subcarrier(tx: &TxSide, imp: &Impairments) -> Vec<f64> {
    (0..DATA_SUBCARRIERS)
        .map(|s| {
            let r = tx.covariance(s, imp, true);
            r.trace().re.max(0.0)
        })
        .collect()
}

/// Collects the SINRs of all active (stream, subcarrier) cells into the
/// flat vector the throughput model consumes.
pub fn active_cells(grid: &[Vec<f64>], powers: &TxPowers) -> Vec<f64> {
    let mut out = Vec::new();
    active_cells_into(grid, powers, &mut out);
    out
}

/// [`active_cells`] appending into a caller-owned buffer (cleared first).
pub fn active_cells_into(grid: &[Vec<f64>], powers: &TxPowers, out: &mut Vec<f64>) {
    out.clear();
    for (k, row) in grid.iter().enumerate() {
        for (s, &sinr) in row.iter().enumerate() {
            if powers.powers[k][s] > 0.0 {
                out.push(sinr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beamforming::beamform;
    use crate::nulling::null_toward;
    use copa_channel::MultipathProfile;
    use copa_num::SimRng;

    fn ch(rng: &mut SimRng, rx: usize, tx: usize, gain: f64) -> FreqChannel {
        FreqChannel::random(rng, rx, tx, gain, &MultipathProfile::default())
    }

    const NOISE: f64 = 1e-9;

    #[test]
    fn siso_sinr_matches_closed_form() {
        // 1x1 link, no interferer, ideal radio: SINR = p |h|^2 / noise.
        let mut rng = SimRng::seed_from(70);
        let truth = ch(&mut rng, 1, 1, 1e-6);
        let imp = Impairments::ideal();
        let pre = beamform(&truth, 1);
        let powers = TxPowers::equal(1, 31.6);
        let own = TxSide {
            channel: &truth,
            precoding: &pre,
            powers: &powers,
            budget_mw: 31.6,
        };
        let grid = mmse_sinr_grid(&own, None, NOISE, &imp);
        for s in 0..DATA_SUBCARRIERS {
            let expect = powers.powers[0][s] * truth.at(s)[(0, 0)].norm_sqr() / NOISE;
            assert!(
                (grid[0][s] / expect - 1.0).abs() < 1e-6,
                "s={s}: {} vs {}",
                grid[0][s],
                expect
            );
        }
    }

    #[test]
    fn interference_reduces_sinr() {
        let mut rng = SimRng::seed_from(71);
        let truth = ch(&mut rng, 2, 4, 1e-6);
        let cross = ch(&mut rng, 2, 4, 1e-7);
        let imp = Impairments::ideal();
        let pre = beamform(&truth, 2);
        let powers = TxPowers::equal(2, 31.6);
        let own = TxSide {
            channel: &truth,
            precoding: &pre,
            powers: &powers,
            budget_mw: 31.6,
        };

        let clean = mmse_sinr_grid(&own, None, NOISE, &imp);

        let int_pre = beamform(&cross, 2); // arbitrary precoder for interferer
        let int_powers = TxPowers::equal(2, 31.6);
        let int = TxSide {
            channel: &cross,
            precoding: &int_pre,
            powers: &int_powers,
            budget_mw: 31.6,
        };
        let dirty = mmse_sinr_grid(&own, Some(&int), NOISE, &imp);

        let mean =
            |g: &Vec<Vec<f64>>| g.iter().flatten().sum::<f64>() / (2.0 * DATA_SUBCARRIERS as f64);
        assert!(
            mean(&dirty) < mean(&clean) * 0.8,
            "interference should reduce SINR: {} vs {}",
            mean(&dirty),
            mean(&clean)
        );
    }

    #[test]
    fn perfect_nulling_removes_interference() {
        // With ideal CSI and no EVM, a nulled interferer is invisible.
        let mut rng = SimRng::seed_from(72);
        let own_truth = ch(&mut rng, 2, 4, 1e-6);
        let cross_truth = ch(&mut rng, 2, 4, 1e-6); // interferer -> this client
        let int_own = ch(&mut rng, 2, 4, 1e-6); // interferer -> its own client
        let imp = Impairments::ideal();

        let pre = beamform(&own_truth, 2);
        let powers = TxPowers::equal(2, 31.6);
        let own = TxSide {
            channel: &own_truth,
            precoding: &pre,
            powers: &powers,
            budget_mw: 31.6,
        };
        let clean = mmse_sinr_grid(&own, None, NOISE, &imp);

        // Interferer nulls toward *this* client (cross_truth is its channel
        // to us) while beamforming to its own client.
        let int_pre = null_toward(&int_own, &cross_truth, 2).unwrap();
        let int_powers = TxPowers::equal(2, 31.6);
        let int = TxSide {
            channel: &cross_truth,
            precoding: &int_pre,
            powers: &int_powers,
            budget_mw: 31.6,
        };
        let nulled = mmse_sinr_grid(&own, Some(&int), NOISE, &imp);

        for s in 0..DATA_SUBCARRIERS {
            for k in 0..2 {
                assert!(
                    (nulled[k][s] / clean[k][s] - 1.0).abs() < 1e-3,
                    "perfect null should preserve SINR at s={s},k={k}: {} vs {}",
                    nulled[k][s],
                    clean[k][s]
                );
            }
        }
    }

    #[test]
    fn evm_floors_the_null() {
        // With TX EVM, even a perfect-CSI null leaks noise.
        let mut rng = SimRng::seed_from(73);
        let own_truth = ch(&mut rng, 2, 4, 1e-6);
        let cross_truth = ch(&mut rng, 2, 4, 1e-6);
        let int_own = ch(&mut rng, 2, 4, 1e-6);
        let imp = Impairments {
            csi_error_db: -300.0,
            tx_evm_db: -30.0,
            leakage_db: -300.0,
        };

        let int_pre = null_toward(&int_own, &cross_truth, 2).unwrap();
        let int_powers = TxPowers::equal(2, 31.6);
        let int = TxSide {
            channel: &cross_truth,
            precoding: &int_pre,
            powers: &int_powers,
            budget_mw: 31.6,
        };
        let rx_power = received_power_per_subcarrier(&int, &imp);
        let total: f64 = rx_power.iter().sum();

        // Compare with the unprecoded (equal power) interference level.
        let bf_pre = beamform(&int_own, 2);
        let unp = TxSide {
            channel: &cross_truth,
            precoding: &bf_pre,
            powers: &int_powers,
            budget_mw: 31.6,
        };
        let unp_power: f64 = received_power_per_subcarrier(&unp, &Impairments::ideal())
            .iter()
            .sum();

        let depth_db = 10.0 * (total / unp_power).log10();
        assert!(
            (-35.0..=-22.0).contains(&depth_db),
            "EVM should floor the null near -30 dB, got {depth_db:.1} dB"
        );
    }

    #[test]
    fn dropped_subcarrier_leaks() {
        let mut rng = SimRng::seed_from(74);
        let cross = ch(&mut rng, 2, 4, 1e-6);
        let int_own = ch(&mut rng, 2, 4, 1e-6);
        let pre = beamform(&int_own, 2);
        let mut powers = TxPowers::equal(2, 31.6);
        // Drop subcarrier 5 entirely.
        powers.powers[0][5] = 0.0;
        powers.powers[1][5] = 0.0;
        let tx = TxSide {
            channel: &cross,
            precoding: &pre,
            powers: &powers,
            budget_mw: 31.6,
        };

        let imp = Impairments {
            csi_error_db: -300.0,
            tx_evm_db: -300.0,
            leakage_db: -27.0,
        };
        let with_leak = received_power_per_subcarrier(&tx, &imp);
        assert!(with_leak[5] > 0.0, "dropped subcarrier should still leak");
        let ideal = received_power_per_subcarrier(&tx, &Impairments::ideal());
        // "ideal" is -300 dB, i.e. numerically zero.
        assert!(ideal[5] < with_leak[5] * 1e-20);
        // Leakage is far below an active subcarrier.
        assert!(with_leak[5] < with_leak[6] * 0.1);
    }

    #[test]
    fn batched_grid_is_bit_identical_to_scalar() {
        // Exercise every scalar branch: interferer on/off, real impairments
        // (EVM + leakage) vs ideal, dropped subcarriers, zero-power streams.
        let mut rng = SimRng::seed_from(80);
        let truth = ch(&mut rng, 2, 4, 1e-6);
        let cross = ch(&mut rng, 2, 4, 1e-7);
        let int_own = ch(&mut rng, 2, 4, 1e-6);
        let pre = beamform(&truth, 2);
        let int_pre = beamform(&int_own, 2);
        let mut powers = TxPowers::equal(2, 31.6);
        powers.powers[0][5] = 0.0;
        powers.powers[1][5] = 0.0; // dropped subcarrier
        powers.powers[1][17] = 0.0; // zero-power cell, stream still active
        let mut int_powers = TxPowers::equal(2, 31.6);
        int_powers.powers[0][30] = 0.0;
        int_powers.powers[1][30] = 0.0;
        let own = TxSide {
            channel: &truth,
            precoding: &pre,
            powers: &powers,
            budget_mw: 31.6,
        };
        let int = TxSide {
            channel: &cross,
            precoding: &int_pre,
            powers: &int_powers,
            budget_mw: 31.6,
        };
        let mut ws = SinrScratch::new();
        for imp in [Impairments::default(), Impairments::ideal()] {
            for with_int in [false, true] {
                let interferer = with_int.then_some(&int);
                let mut batched = Vec::new();
                mmse_sinr_grid_with(&own, interferer, NOISE, &imp, &mut ws, &mut batched);
                let mut scalar = Vec::new();
                mmse_sinr_grid_scalar_with(&own, interferer, NOISE, &imp, &mut ws, &mut scalar);
                assert_eq!(batched.len(), scalar.len());
                for k in 0..batched.len() {
                    for s in 0..DATA_SUBCARRIERS {
                        assert_eq!(
                            batched[k][s].to_bits(),
                            scalar[k][s].to_bits(),
                            "with_int={with_int} k={k} s={s}: {} vs {}",
                            batched[k][s],
                            scalar[k][s]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn active_cells_respects_dropping() {
        let grid = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let powers = TxPowers {
            powers: vec![vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]],
        };
        let cells = active_cells(&grid, &powers);
        assert_eq!(cells, vec![1.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn two_streams_interfere_without_enough_rx_antennas() {
        // A 1-antenna receiver cannot separate 2 streams: SINR saturates.
        let mut rng = SimRng::seed_from(75);
        let truth = ch(&mut rng, 1, 4, 1e-6);
        // Force a 2-stream precoder from a fake 2-row estimate, then send to
        // a 1-antenna receiver.
        let fake = ch(&mut rng, 2, 4, 1e-6);
        let pre = beamform(&fake, 2);
        let powers = TxPowers::equal(2, 31.6);
        let own = TxSide {
            channel: &truth,
            precoding: &pre,
            powers: &powers,
            budget_mw: 31.6,
        };
        let grid = mmse_sinr_grid(&own, None, NOISE, &Impairments::ideal());
        // Streams mutually interfere: SINR can't exceed ~1/(inter-stream
        // leakage), far below the interference-free level.
        let mean: f64 = grid.iter().flatten().sum::<f64>() / (2.0 * DATA_SUBCARRIERS as f64);
        assert!(
            mean < 100.0,
            "1-antenna rx should choke on 2 streams, mean SINR {mean}"
        );
    }
}
