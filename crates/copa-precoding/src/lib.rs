//! # copa-precoding
//!
//! MIMO precoding and receive processing for the COPA reproduction:
//!
//! * [`precoder`] -- the `LinkPrecoding` / `TxPowers` data model.
//! * [`beamforming`] -- SVD transmit beamforming (section 3.3).
//! * [`nulling`] -- nullspace-projection interference nulling, including
//!   degrees-of-freedom accounting for overconstrained cases.
//! * [`sinr`] -- post-MMSE per-stream per-subcarrier SINR at a client, with
//!   transmit-EVM noise and dropped-subcarrier leakage.
//! * [`sda`] -- the shut-down-antenna maneuver for overconstrained nulling
//!   (section 3.4).

#![warn(missing_docs)]

pub mod beamforming;
pub mod nulling;
pub mod precoder;
pub mod sda;
pub mod sinr;

pub use beamforming::{beamform, beamform_scalar_with, beamform_with};
pub use nulling::{null_toward, null_toward_scalar_with, null_toward_with, nulling_dof};
pub use precoder::{LinkPrecoding, PrecodeScratch, TxPowers};
pub use sinr::{
    active_cells, active_cells_into, mmse_sinr_grid, mmse_sinr_grid_scalar_with,
    mmse_sinr_grid_with, received_power_per_subcarrier, SinrScratch, TxSide,
};
