//! # copa-precoding
//!
//! MIMO precoding and receive processing for the COPA reproduction:
//!
//! * [`precoder`] -- the `LinkPrecoding` / `TxPowers` data model.
//! * [`beamforming`] -- SVD transmit beamforming (section 3.3).
//! * [`nulling`] -- nullspace-projection interference nulling, including
//!   degrees-of-freedom accounting for overconstrained cases.
//! * [`sinr`] -- post-MMSE per-stream per-subcarrier SINR at a client, with
//!   transmit-EVM noise and dropped-subcarrier leakage.
//! * [`sda`] -- the shut-down-antenna maneuver for overconstrained nulling
//!   (section 3.4).

#![warn(missing_docs)]

pub mod beamforming;
pub mod nulling;
pub mod precoder;
pub mod sda;
pub mod sinr;

pub use beamforming::beamform;
pub use nulling::{null_toward, nulling_dof};
pub use precoder::{LinkPrecoding, TxPowers};
pub use sinr::{active_cells, mmse_sinr_grid, received_power_per_subcarrier, TxSide};
