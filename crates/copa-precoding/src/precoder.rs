//! Precoding data model shared by beamforming, nulling and the allocators.

use copa_num::batch::{CBatch, SvdBatch, SvdBatchScratch};
use copa_num::matrix::CMat;
use copa_num::svd::{Svd, SvdScratch};
use copa_phy::ofdm::DATA_SUBCARRIERS;

/// Reusable working storage for the per-subcarrier precoding kernels
/// ([`crate::beamforming::beamform_with`] and
/// [`crate::nulling::null_toward_with`]).
///
/// One instance serves every subcarrier of every link of every topology a
/// worker evaluates: the buffers grow to the largest shape in play and are
/// then reused without touching the allocator.
#[derive(Clone, Debug, Default)]
pub struct PrecodeScratch {
    /// Jacobi SVD working storage.
    pub(crate) svd: SvdScratch,
    /// Output slot for the own-channel SVD.
    pub(crate) dec: Svd,
    /// Output slot for the victim-channel SVD (nulling only).
    pub(crate) vic_dec: Svd,
    /// Nullspace basis of the victim channel (`tx x dof`).
    pub(crate) v0: CMat,
    /// Projected channel `H_own * V0`.
    pub(crate) h_eff: CMat,
    /// Beamformer within the nullspace.
    pub(crate) v1: CMat,
    /// Selected column indices `0..streams`.
    pub(crate) cols: Vec<usize>,
    /// SoA gather of the own channel (one lane per subcarrier).
    pub(crate) h_b: CBatch,
    /// SoA gather of the victim channel (nulling only).
    pub(crate) vic_b: CBatch,
    /// Batched Jacobi SVD working storage.
    pub(crate) svd_b: SvdBatchScratch,
    /// Output slot for the batched own-channel SVD.
    pub(crate) dec_b: SvdBatch,
    /// Output slot for the batched victim-channel SVD (nulling only).
    pub(crate) vic_dec_b: SvdBatch,
    /// Batched nullspace basis of the victim channel (`tx x dof` per lane).
    pub(crate) v0_b: CBatch,
    /// Batched projected channel `H_own * V0`.
    pub(crate) h_eff_b: CBatch,
    /// Batched beamformer within the nullspace.
    pub(crate) v1_b: CBatch,
    /// Batched composite precoder `V0 * V1`.
    pub(crate) pre_b: CBatch,
}

impl PrecodeScratch {
    /// A fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A per-subcarrier linear precoder for one AP->client link.
///
/// For each data subcarrier there is a `tx_antennas x streams` matrix with
/// unit-norm columns, so transmitting stream `k` with power `p` radiates
/// exactly `p` mW of antenna power on that subcarrier. `stream_gains` holds
/// the nominal post-combining channel gain of each stream (the squared
/// singular value of the effective channel), which the power allocators use
/// as the scalar per-subcarrier gain `g` in `SINR = p g / (noise + I)`.
#[derive(Clone, Debug, Default)]
pub struct LinkPrecoding {
    /// Per-subcarrier precoding matrices (`tx x streams`, unit-norm columns).
    pub precoder: Vec<CMat>,
    /// `stream_gains[k][s]`: nominal gain of stream `k` on subcarrier `s`.
    pub stream_gains: Vec<Vec<f64>>,
}

impl LinkPrecoding {
    /// An empty precoding, used as a reusable output slot for the `_with`
    /// kernels (buffers grow on first use, then are reused).
    pub fn empty() -> Self {
        Self {
            precoder: Vec::new(),
            stream_gains: Vec::new(),
        }
    }

    /// Reshapes for `n_sub` subcarriers x `streams` streams, reusing every
    /// existing buffer (per-subcarrier matrices keep their allocations).
    pub(crate) fn reset_shape(&mut self, n_sub: usize, streams: usize) {
        self.precoder.truncate(n_sub);
        self.precoder.resize_with(n_sub, CMat::default);
        self.stream_gains.truncate(streams);
        self.stream_gains.resize_with(streams, Vec::new);
        for g in &mut self.stream_gains {
            g.clear();
            g.resize(n_sub, 0.0);
        }
    }

    /// Number of spatial streams.
    pub fn streams(&self) -> usize {
        self.stream_gains.len()
    }

    /// Number of transmit antennas.
    pub fn tx_antennas(&self) -> usize {
        self.precoder[0].rows()
    }

    /// Checks the unit-column-norm invariant (within `tol`).
    pub fn columns_are_unit_norm(&self, tol: f64) -> bool {
        self.precoder.iter().all(|p| {
            (0..p.cols()).all(|j| {
                let n: f64 = (0..p.rows()).map(|i| p[(i, j)].norm_sqr()).sum();
                (n - 1.0).abs() < tol
            })
        })
    }
}

/// Per-stream, per-subcarrier transmit powers in mW.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TxPowers {
    /// `powers[k][s]`: power of stream `k` on subcarrier `s`, mW.
    pub powers: Vec<Vec<f64>>,
}

impl TxPowers {
    /// Equal split of `budget_mw` across `streams x DATA_SUBCARRIERS` cells
    /// -- what stock 802.11 does.
    pub fn equal(streams: usize, budget_mw: f64) -> Self {
        let mut p = Self::default();
        p.set_equal(streams, budget_mw);
        p
    }

    /// Pooled [`TxPowers::equal`]: reshapes in place, reusing row buffers.
    pub fn set_equal(&mut self, streams: usize, budget_mw: f64) {
        assert!(streams > 0);
        let per = budget_mw / (streams * DATA_SUBCARRIERS) as f64;
        self.powers.truncate(streams);
        self.powers.resize_with(streams, Vec::new);
        for row in &mut self.powers {
            row.clear();
            row.resize(DATA_SUBCARRIERS, per);
        }
    }

    /// Pooled deep copy (reuses this value's row buffers).
    pub fn copy_from(&mut self, other: &TxPowers) {
        self.powers.truncate(other.powers.len());
        self.powers.resize_with(other.powers.len(), Vec::new);
        for (dst, src) in self.powers.iter_mut().zip(&other.powers) {
            dst.clear();
            dst.extend_from_slice(src);
        }
    }

    /// All-zero allocation (an AP that stays silent).
    pub fn silent(streams: usize) -> Self {
        Self {
            powers: vec![vec![0.0; DATA_SUBCARRIERS]; streams],
        }
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.powers.len()
    }

    /// Total allocated power in mW.
    pub fn total_mw(&self) -> f64 {
        self.powers.iter().map(|s| s.iter().sum::<f64>()).sum()
    }

    /// Total power on subcarrier `s` across streams.
    pub fn subcarrier_total_mw(&self, s: usize) -> f64 {
        self.powers.iter().map(|k| k[s]).sum()
    }

    /// `true` if subcarrier `s` carries no power on any stream.
    pub fn is_dropped(&self, s: usize) -> bool {
        self.subcarrier_total_mw(s) == 0.0
    }

    /// Indices of active (non-dropped) subcarriers for stream `k`.
    pub fn active_subcarriers(&self, k: usize) -> Vec<usize> {
        self.powers[k]
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(s, _)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_conserves_budget() {
        let p = TxPowers::equal(2, 31.6);
        assert_eq!(p.streams(), 2);
        assert!((p.total_mw() - 31.6).abs() < 1e-9);
        assert!((p.powers[0][0] - 31.6 / 104.0).abs() < 1e-12);
    }

    #[test]
    fn silent_is_all_dropped() {
        let p = TxPowers::silent(2);
        assert_eq!(p.total_mw(), 0.0);
        for s in 0..DATA_SUBCARRIERS {
            assert!(p.is_dropped(s));
        }
        assert!(p.active_subcarriers(0).is_empty());
    }

    #[test]
    fn active_subcarriers_filter() {
        let mut p = TxPowers::silent(1);
        p.powers[0][3] = 1.0;
        p.powers[0][10] = 2.0;
        assert_eq!(p.active_subcarriers(0), vec![3, 10]);
        assert!(!p.is_dropped(3));
        assert!(p.is_dropped(4));
        assert!((p.subcarrier_total_mw(10) - 2.0).abs() < 1e-12);
    }
}
