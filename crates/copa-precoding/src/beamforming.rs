//! Transmit beamforming via the singular value decomposition.
//!
//! "The leader AP calculates ... 'transmit beamforming' matrices that
//! maximize power at the intended receiver, and are calculated using the
//! Singular Value Decomposition of the appropriate channel" (section 3.3).

use crate::precoder::{LinkPrecoding, PrecodeScratch};
use copa_channel::FreqChannel;
use copa_num::batch::svd_batch_into;
use copa_num::svd::svd_into;

/// Builds the SVD beamforming precoder for `streams` spatial streams from
/// the (estimated) channel: on each subcarrier, the precoder columns are the
/// top right singular vectors and the nominal stream gains are the squared
/// singular values.
///
/// Allocating convenience wrapper around [`beamform_with`].
///
/// # Panics
/// Panics if `streams` exceeds `min(rx, tx)` antennas.
pub fn beamform(est: &FreqChannel, streams: usize) -> LinkPrecoding {
    let mut ws = PrecodeScratch::new();
    let mut out = LinkPrecoding::empty();
    beamform_with(est, streams, &mut ws, &mut out);
    out
}

// alloc-free: begin beamform_with (per-subcarrier kernel -- no Vec::new / vec!)
/// [`beamform`] writing into caller-owned buffers: after warm-up one scratch
/// and one output slot serve every subcarrier of every link with zero heap
/// allocation.
///
/// Batched implementation: all subcarriers are gathered into an SoA
/// [`copa_num::batch::CBatch`] and decomposed by one [`svd_batch_into`] call.
/// Each lane replays the scalar Jacobi kernel exactly, so the result is
/// bit-identical to [`beamform_scalar_with`] (proved by the tests here and
/// by `crates/copa-num/tests/prop_batch.rs`).
pub fn beamform_with(
    est: &FreqChannel,
    streams: usize,
    ws: &mut PrecodeScratch,
    out: &mut LinkPrecoding,
) {
    assert!(streams >= 1, "need at least one stream");
    assert!(
        streams <= est.rx().min(est.tx()),
        "{} streams do not fit a {}x{} channel",
        streams,
        est.rx(),
        est.tx()
    );
    let n_sub = est.iter().count();
    out.reset_shape(n_sub, streams);
    ws.h_b.reset(est.rx(), est.tx(), n_sub);
    for (s, h) in est.iter().enumerate() {
        ws.h_b.load_lane(s, h);
    }
    svd_batch_into(&ws.h_b, &mut ws.svd_b, &mut ws.dec_b);
    let tx = est.tx();
    for s in 0..n_sub {
        let pre = &mut out.precoder[s];
        pre.reset(tx, streams);
        for i in 0..tx {
            for k in 0..streams {
                pre[(i, k)] = ws.dec_b.v.get(i, k, s);
            }
        }
        for (k, gains) in out.stream_gains.iter_mut().enumerate() {
            let sv = ws.dec_b.s_at(k, s);
            gains[s] = sv * sv;
        }
    }
}

/// The original per-subcarrier scalar path, kept callable for the
/// batched-vs-scalar bit-identity gates (`--simd-smoke`, determinism suite).
/// Semantics and output are identical to [`beamform_with`].
pub fn beamform_scalar_with(
    est: &FreqChannel,
    streams: usize,
    ws: &mut PrecodeScratch,
    out: &mut LinkPrecoding,
) {
    assert!(streams >= 1, "need at least one stream");
    assert!(
        streams <= est.rx().min(est.tx()),
        "{} streams do not fit a {}x{} channel",
        streams,
        est.rx(),
        est.tx()
    );
    ws.cols.clear();
    ws.cols.extend(0..streams);
    out.reset_shape(est.iter().count(), streams);
    for (s, h) in est.iter().enumerate() {
        svd_into(h, &mut ws.svd, &mut ws.dec);
        ws.dec.v.select_columns_into(&ws.cols, &mut out.precoder[s]);
        for (k, gains) in out.stream_gains.iter_mut().enumerate() {
            gains[s] = ws.dec.s[k] * ws.dec.s[k];
        }
    }
}
// alloc-free: end beamform_with

#[cfg(test)]
mod tests {
    use super::*;
    use copa_channel::MultipathProfile;
    use copa_num::SimRng;
    use copa_phy::ofdm::DATA_SUBCARRIERS;

    fn ch(rng: &mut SimRng, rx: usize, tx: usize) -> FreqChannel {
        FreqChannel::random(rng, rx, tx, 1.0, &MultipathProfile::default())
    }

    #[test]
    fn precoder_shapes_and_norms() {
        let mut rng = SimRng::seed_from(50);
        let est = ch(&mut rng, 2, 4);
        let bf = beamform(&est, 2);
        assert_eq!(bf.streams(), 2);
        assert_eq!(bf.tx_antennas(), 4);
        assert_eq!(bf.precoder.len(), DATA_SUBCARRIERS);
        assert!(bf.columns_are_unit_norm(1e-9));
    }

    #[test]
    fn gains_match_realized_channel_power() {
        // |H w_k|^2 == sigma_k^2 when the precoder comes from H's own SVD.
        let mut rng = SimRng::seed_from(51);
        let est = ch(&mut rng, 2, 4);
        let bf = beamform(&est, 2);
        for s in 0..DATA_SUBCARRIERS {
            for k in 0..2 {
                let w = bf.precoder[s].column(k);
                let rx = est.at(s).matmul(&w);
                let realized = rx.frobenius_norm_sqr();
                assert!(
                    (realized - bf.stream_gains[k][s]).abs() < 1e-9 * realized.max(1e-12),
                    "s={s} k={k}"
                );
            }
        }
    }

    #[test]
    fn first_stream_dominates() {
        let mut rng = SimRng::seed_from(52);
        let est = ch(&mut rng, 2, 4);
        let bf = beamform(&est, 2);
        for s in 0..DATA_SUBCARRIERS {
            assert!(bf.stream_gains[0][s] >= bf.stream_gains[1][s]);
        }
    }

    #[test]
    fn beamforming_beats_single_antenna_gain() {
        // The top singular value squared is at least the best single
        // matrix entry's power (beamforming gain).
        let mut rng = SimRng::seed_from(53);
        let est = ch(&mut rng, 1, 4);
        let bf = beamform(&est, 1);
        for s in 0..DATA_SUBCARRIERS {
            let best_entry = (0..4)
                .map(|t| est.at(s)[(0, t)].norm_sqr())
                .fold(0.0, f64::max);
            assert!(bf.stream_gains[0][s] >= best_entry - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "streams do not fit")]
    fn too_many_streams_panics() {
        let mut rng = SimRng::seed_from(54);
        let est = ch(&mut rng, 2, 4);
        let _ = beamform(&est, 3);
    }

    #[test]
    fn batched_is_bit_identical_to_scalar() {
        for (seed, rx, tx, streams) in [
            (60u64, 2usize, 4usize, 2usize),
            (61, 2, 4, 1),
            (62, 4, 2, 2),
            (63, 1, 1, 1),
            (64, 3, 3, 3),
        ] {
            let mut rng = SimRng::seed_from(seed);
            let est = ch(&mut rng, rx, tx);
            let mut ws = PrecodeScratch::new();
            let mut batched = LinkPrecoding::empty();
            beamform_with(&est, streams, &mut ws, &mut batched);
            let mut scalar = LinkPrecoding::empty();
            beamform_scalar_with(&est, streams, &mut ws, &mut scalar);
            for s in 0..DATA_SUBCARRIERS {
                let (b, c) = (&batched.precoder[s], &scalar.precoder[s]);
                assert_eq!((b.rows(), b.cols()), (c.rows(), c.cols()));
                for i in 0..b.rows() {
                    for j in 0..b.cols() {
                        assert_eq!(
                            b[(i, j)].re.to_bits(),
                            c[(i, j)].re.to_bits(),
                            "seed={seed} s={s} ({i},{j}).re"
                        );
                        assert_eq!(b[(i, j)].im.to_bits(), c[(i, j)].im.to_bits());
                    }
                }
                for k in 0..streams {
                    assert_eq!(
                        batched.stream_gains[k][s].to_bits(),
                        scalar.stream_gains[k][s].to_bits(),
                        "seed={seed} gain k={k} s={s}"
                    );
                }
            }
        }
    }
}
