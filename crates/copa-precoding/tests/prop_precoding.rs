//! Property-based tests for precoding and SINR evaluation, on the in-repo
//! [`copa_num::prop`] harness.

use copa_channel::{FreqChannel, Impairments, MultipathProfile};
use copa_num::prop::check;
use copa_num::SimRng;
use copa_num::{prop_assert, prop_assert_eq};
use copa_phy::ofdm::DATA_SUBCARRIERS;
use copa_precoding::beamforming::beamform;
use copa_precoding::nulling::null_toward;
use copa_precoding::sinr::{mmse_sinr_grid, TxSide};
use copa_precoding::TxPowers;

const CASES: usize = 24;

fn channel(seed: u64, rx: usize, tx: usize) -> FreqChannel {
    FreqChannel::random(
        &mut SimRng::seed_from(seed),
        rx,
        tx,
        1e-6,
        &MultipathProfile::default(),
    )
}

#[test]
fn beamform_columns_always_unit_norm() {
    check("beamform_columns_always_unit_norm", CASES, |g| {
        let seed = g.u64();
        let rx = g.usize_in(1, 3);
        let tx = g.usize_in(1, 5);
        let streams_max = rx.min(tx);
        let ch = channel(seed, rx, tx);
        for k in 1..=streams_max {
            let pre = beamform(&ch, k);
            prop_assert!(pre.columns_are_unit_norm(1e-8));
            prop_assert_eq!(pre.streams(), k);
            // Gains non-negative and sorted per subcarrier.
            for s in 0..DATA_SUBCARRIERS {
                for j in 1..k {
                    prop_assert!(pre.stream_gains[j - 1][s] >= pre.stream_gains[j][s] - 1e-12);
                }
                prop_assert!(pre.stream_gains[k - 1][s] >= 0.0);
            }
        }
        Ok(())
    });
}

#[test]
fn nulling_annihilates_with_exact_csi() {
    check("nulling_annihilates_with_exact_csi", CASES, |g| {
        let seed = g.u64();
        let own = channel(seed ^ 1, 2, 4);
        let victim = channel(seed ^ 2, 2, 4);
        if let Some(pre) = null_toward(&own, &victim, 2) {
            prop_assert!(pre.columns_are_unit_norm(1e-8));
            for s in [0usize, 17, 38, 51] {
                let leak = victim.at(s).matmul(&pre.precoder[s]).max_abs();
                let scale = victim.at(s).max_abs().max(1e-12);
                prop_assert!(leak < 1e-6 * scale, "leak {leak} at s={s}");
            }
        } else {
            prop_assert!(false, "4x2 nulling must be feasible");
        }
        Ok(())
    });
}

#[test]
fn sinr_grid_is_nonnegative_and_finite() {
    check("sinr_grid_is_nonnegative_and_finite", CASES, |g| {
        let seed = g.u64();
        let budget = g.f64_in(1.0, 40.0);
        let truth = channel(seed ^ 3, 2, 4);
        let cross = channel(seed ^ 4, 2, 4);
        let pre = beamform(&truth, 2);
        let int_pre = beamform(&channel(seed ^ 5, 2, 4), 2);
        let powers = TxPowers::equal(2, budget);
        let own = TxSide {
            channel: &truth,
            precoding: &pre,
            powers: &powers,
            budget_mw: budget,
        };
        let int = TxSide {
            channel: &cross,
            precoding: &int_pre,
            powers: &powers,
            budget_mw: budget,
        };
        let grid = mmse_sinr_grid(&own, Some(&int), 1e-9, &Impairments::default());
        for row in &grid {
            for &v in row {
                prop_assert!(v.is_finite() && v >= 0.0);
            }
        }
        Ok(())
    });
}

#[test]
fn more_interferer_power_never_helps() {
    check("more_interferer_power_never_helps", CASES, |g| {
        let seed = g.u64();
        let truth = channel(seed ^ 6, 2, 4);
        let cross = channel(seed ^ 7, 2, 4);
        let pre = beamform(&truth, 2);
        let int_pre = beamform(&channel(seed ^ 8, 2, 4), 2);
        let powers = TxPowers::equal(2, 31.6);
        let own = TxSide {
            channel: &truth,
            precoding: &pre,
            powers: &powers,
            budget_mw: 31.6,
        };
        let imp = Impairments::ideal();

        let weak_powers = TxPowers::equal(2, 3.16);
        let strong_powers = TxPowers::equal(2, 31.6);
        let weak = TxSide {
            channel: &cross,
            precoding: &int_pre,
            powers: &weak_powers,
            budget_mw: 3.16,
        };
        let strong = TxSide {
            channel: &cross,
            precoding: &int_pre,
            powers: &strong_powers,
            budget_mw: 31.6,
        };
        let g_weak = mmse_sinr_grid(&own, Some(&weak), 1e-9, &imp);
        let g_strong = mmse_sinr_grid(&own, Some(&strong), 1e-9, &imp);
        for s in 0..DATA_SUBCARRIERS {
            for k in 0..2 {
                prop_assert!(
                    g_strong[k][s] <= g_weak[k][s] * (1.0 + 1e-9) + 1e-12,
                    "stronger interference increased SINR at s={s},k={k}"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn scaling_tx_power_scales_interference_free_sinr() {
    check(
        "scaling_tx_power_scales_interference_free_sinr",
        CASES,
        |g| {
            let seed = g.u64();
            let factor = g.f64_in(1.1, 10.0);
            let truth = channel(seed ^ 9, 1, 2);
            let pre = beamform(&truth, 1);
            let p1 = TxPowers::equal(1, 10.0);
            let p2 = TxPowers::equal(1, 10.0 * factor);
            let imp = Impairments::ideal();
            let g1 = mmse_sinr_grid(
                &TxSide {
                    channel: &truth,
                    precoding: &pre,
                    powers: &p1,
                    budget_mw: 10.0,
                },
                None,
                1e-9,
                &imp,
            );
            let g2 = mmse_sinr_grid(
                &TxSide {
                    channel: &truth,
                    precoding: &pre,
                    powers: &p2,
                    budget_mw: 10.0 * factor,
                },
                None,
                1e-9,
                &imp,
            );
            for s in 0..DATA_SUBCARRIERS {
                if g1[0][s] > 1e-12 {
                    prop_assert!((g2[0][s] / g1[0][s] / factor - 1.0).abs() < 1e-6);
                }
            }
            Ok(())
        },
    );
}
