//! Property tests for the scratch-workspace (`_into`) kernel variants.
//!
//! The hot path leans on two guarantees: (1) the `_into` variants compute
//! *bit-identical* results to their allocating counterparts, and (2) a
//! scratch buffer reused across many calls with varying shapes carries no
//! state from one call into the next. Both are checked here over random
//! matrices and sizes, comparing every f64 via `to_bits`.

use copa_num::complex::C64;
use copa_num::fft::{tapped_delay_response, tapped_delay_response_into};
use copa_num::matrix::CMat;
use copa_num::prop::{check, Gen};
use copa_num::prop_assert;
use copa_num::solve::{inverse_loaded, inverse_loaded_into, Lu, LuScratch};
use copa_num::svd::{svd, svd_into, Svd, SvdScratch};

const CASES: usize = 48;

fn complex(g: &mut Gen) -> C64 {
    C64::new(g.f64_in(-10.0, 10.0), g.f64_in(-10.0, 10.0))
}

fn cmat(g: &mut Gen, m: usize, n: usize) -> CMat {
    let v: Vec<C64> = (0..m * n).map(|_| complex(g)).collect();
    CMat::from_rows(m, n, &v)
}

/// Bit-level equality of two matrices, shapes included.
fn bits_eq(a: &CMat, b: &CMat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && (0..a.rows()).all(|i| {
            (0..a.cols()).all(|j| {
                let (x, y) = (a[(i, j)], b[(i, j)]);
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
            })
        })
}

#[test]
fn mul_into_bit_identical_to_matmul() {
    check("mul_into_bit_identical_to_matmul", CASES, |g| {
        // One `out` buffer reused across all shapes in this case.
        let mut out = CMat::zeros(1, 1);
        for _ in 0..4 {
            let (m, k, n) = (g.usize_in(1, 5), g.usize_in(1, 5), g.usize_in(1, 5));
            let a = cmat(g, m, k);
            let b = cmat(g, k, n);
            a.mul_into(&b, &mut out);
            prop_assert!(bits_eq(&a.matmul(&b), &out), "{m}x{k} * {k}x{n}");
        }
        Ok(())
    });
}

#[test]
fn hermitian_and_column_selection_bit_identical() {
    check("hermitian_and_column_selection_bit_identical", CASES, |g| {
        let mut out = CMat::zeros(1, 1);
        for _ in 0..4 {
            let (m, n) = (g.usize_in(1, 6), g.usize_in(1, 6));
            let a = cmat(g, m, n);
            a.hermitian_into(&mut out);
            prop_assert!(bits_eq(&a.hermitian(), &out), "hermitian {m}x{n}");
            let j = g.usize_in(0, n);
            a.column_into(j, &mut out);
            prop_assert!(bits_eq(&a.column(j), &out), "column {j} of {m}x{n}");
            let cols: Vec<usize> = (0..g.usize_in(1, n + 1))
                .map(|_| g.usize_in(0, n))
                .collect();
            a.select_columns_into(&cols, &mut out);
            prop_assert!(
                bits_eq(&a.select_columns(&cols), &out),
                "select {cols:?} of {m}x{n}"
            );
        }
        Ok(())
    });
}

#[test]
fn svd_scratch_reuse_is_stateless() {
    check("svd_scratch_reuse_is_stateless", CASES, |g| {
        // One scratch + one output slot across wildly varying shapes; every
        // call must match a fresh allocating `svd` bit for bit.
        let mut scratch = SvdScratch::new();
        let mut out = Svd::default();
        let mut ns = CMat::zeros(1, 1);
        for _ in 0..4 {
            let (m, n) = (g.usize_in(1, 5), g.usize_in(1, 5));
            let a = cmat(g, m, n);
            let fresh = svd(&a);
            svd_into(&a, &mut scratch, &mut out);
            prop_assert!(bits_eq(&fresh.u, &out.u), "U differs for {m}x{n}");
            prop_assert!(bits_eq(&fresh.v, &out.v), "V differs for {m}x{n}");
            prop_assert!(
                fresh.s.len() == out.s.len()
                    && fresh
                        .s
                        .iter()
                        .zip(&out.s)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                "singular values differ for {m}x{n}"
            );
            out.nullspace_into(1e-9, &mut ns);
            prop_assert!(bits_eq(&fresh.nullspace(1e-9), &ns), "nullspace {m}x{n}");
        }
        Ok(())
    });
}

#[test]
fn lu_solve_into_and_inverse_loaded_into_bit_identical() {
    check("lu_solve_into_inverse_loaded_into", CASES, |g| {
        let mut scratch = LuScratch::new();
        let mut inv = CMat::zeros(1, 1);
        let mut x = CMat::zeros(1, 1);
        for _ in 0..4 {
            let n = g.usize_in(1, 5);
            let a = cmat(g, n, n);
            let eps = g.f64_in(1e-9, 1e-3);
            inverse_loaded_into(&a, eps, &mut scratch, &mut inv);
            prop_assert!(bits_eq(&inverse_loaded(&a, eps), &inv), "inverse n={n}");
            // The diagonally loaded matrix is always factorable.
            let mut loaded = a.clone();
            for i in 0..n {
                loaded[(i, i)] = loaded[(i, i)] + C64::real(eps);
            }
            let lu = Lu::factor(&loaded).expect("loaded matrix factors");
            let cols = g.usize_in(1, 3);
            let b = cmat(g, n, cols);
            lu.solve_into(&b, &mut x);
            prop_assert!(bits_eq(&lu.solve(&b), &x), "solve n={n}");
        }
        Ok(())
    });
}

#[test]
fn tapped_delay_response_into_bit_identical() {
    check("tapped_delay_response_into_bit_identical", CASES, |g| {
        let mut out = Vec::new();
        for _ in 0..4 {
            let n = *g.pick(&[8usize, 16, 64]);
            let taps: Vec<(usize, C64)> = (0..g.usize_in(1, 5))
                .map(|_| (g.usize_in(0, 2 * n), complex(g)))
                .collect();
            let fresh = tapped_delay_response(&taps, n);
            tapped_delay_response_into(&taps, n, &mut out);
            prop_assert!(
                fresh.len() == out.len()
                    && fresh.iter().zip(&out).all(|(x, y)| {
                        x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
                    }),
                "fft length {n}"
            );
        }
        Ok(())
    });
}
