//! Property-based tests for the numeric kernels.

use copa_num::complex::C64;
use copa_num::fft::{fft, ifft};
use copa_num::matrix::CMat;
use copa_num::solve::{inverse, Lu};
use copa_num::special::{db_to_lin, erfc, lin_to_db, q_func};
use copa_num::stats::{percentile, EmpiricalCdf};
use copa_num::svd::svd;
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e3f64..1e3).prop_filter("nonzero-ish", |x| x.abs() > 1e-6 || *x == 0.0)
}

fn complex() -> impl Strategy<Value = (f64, f64)> {
    (finite_f64(), finite_f64())
}

fn cmat(m: usize, n: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(complex(), m * n).prop_map(move |v| {
        CMat::from_rows(
            m,
            n,
            &v.into_iter().map(|(re, im)| C64::new(re, im)).collect::<Vec<_>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms((ar, ai) in complex(), (br, bi) in complex()) {
        let a = C64::new(ar, ai);
        let b = C64::new(br, bi);
        // Commutativity.
        prop_assert!(((a + b) - (b + a)).abs() < 1e-9);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-9);
        // Conjugation distributes.
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-6 * (1.0 + (a*b).abs()));
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6 * (1.0 + a.abs() * b.abs()));
    }

    #[test]
    fn svd_reconstructs(a in cmat(3, 4)) {
        let d = svd(&a);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(d.reconstruct().approx_eq(&a, 1e-8 * scale), "U S V^H != A");
        prop_assert!(d.v.has_orthonormal_columns(1e-8), "V not unitary");
        // Singular values sorted, non-negative.
        for w in d.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(d.s.iter().all(|&x| x >= 0.0));
        // Energy identity.
        let energy: f64 = d.s.iter().map(|x| x * x).sum();
        prop_assert!((energy - a.frobenius_norm_sqr()).abs() < 1e-6 * (1.0 + energy));
    }

    #[test]
    fn nullspace_annihilates(a in cmat(2, 4)) {
        let d = svd(&a);
        let ns = d.nullspace(1e-9);
        prop_assert!(ns.cols() >= 2);
        let residual = a.matmul(&ns).max_abs();
        prop_assert!(residual < 1e-7 * (1.0 + a.max_abs()), "residual {residual}");
    }

    #[test]
    fn lu_solves_what_it_factors(a in cmat(3, 3), b in cmat(3, 2)) {
        if let Ok(lu) = Lu::factor(&a) {
            let x = lu.solve(&b);
            let back = a.matmul(&x);
            let scale = b.frobenius_norm().max(a.frobenius_norm()).max(1.0);
            // Conditioning can inflate error; accept a generous bound and
            // just require the residual to be small relative to x's size.
            let xn = x.frobenius_norm().max(1.0);
            prop_assert!(back.approx_eq(&b, 1e-5 * scale * xn), "A x != b");
        }
    }

    #[test]
    fn inverse_round_trips(a in cmat(2, 2)) {
        if let Ok(inv) = inverse(&a) {
            let xn = inv.frobenius_norm().max(1.0) * a.frobenius_norm().max(1.0);
            prop_assert!(a.matmul(&inv).approx_eq(&CMat::identity(2), 1e-6 * xn));
        }
    }

    #[test]
    fn fft_round_trip(v in proptest::collection::vec(complex(), 64)) {
        let x: Vec<C64> = v.into_iter().map(|(re, im)| C64::new(re, im)).collect();
        let y = ifft(&fft(&x));
        let scale = x.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn fft_parseval(v in proptest::collection::vec(complex(), 32)) {
        let x: Vec<C64> = v.into_iter().map(|(re, im)| C64::new(re, im)).collect();
        let y = fft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((ex - ey).abs() < 1e-8 * (1.0 + ex));
    }

    #[test]
    fn erfc_bounds_and_symmetry(x in -5.0f64..5.0) {
        let v = erfc(x);
        prop_assert!((0.0..=2.0).contains(&v));
        prop_assert!((erfc(-x) - (2.0 - v)).abs() < 1e-9);
        let q = q_func(x);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn db_round_trip(db in -120.0f64..60.0) {
        prop_assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_order_statistics(mut xs in proptest::collection::vec(-1e3f64..1e3, 1..40), p in 0.0f64..100.0) {
        let v = percentile(&xs, p);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn cdf_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let cdf = EmpiricalCdf::new(&xs);
        let mut prev = -1.0;
        for i in -10..=10 {
            let p = cdf.eval(i as f64 * 10.0);
            prop_assert!(p >= prev);
            prop_assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }
}
