//! Property-based tests for the numeric kernels, on the in-repo
//! [`copa_num::prop`] harness (deterministic seeds, shrink-by-scale).

use copa_num::complex::C64;
use copa_num::fft::{fft, ifft};
use copa_num::matrix::CMat;
use copa_num::prop::{check, Gen};
use copa_num::solve::{inverse, Lu};
use copa_num::special::{db_to_lin, erfc, lin_to_db, q_func};
use copa_num::stats::{percentile, EmpiricalCdf};
use copa_num::svd::svd;
use copa_num::{prop_assert, prop_assert_eq};

const CASES: usize = 64;

/// Finite magnitudes away from the denormal zone: either exactly zero or
/// above 1e-6 in absolute value (mirrors the original filter).
fn finite_f64(g: &mut Gen) -> f64 {
    let x = g.f64_in(-1e3, 1e3);
    if x.abs() > 1e-6 || x == 0.0 {
        x
    } else {
        0.0
    }
}

fn complex(g: &mut Gen) -> C64 {
    C64::new(finite_f64(g), finite_f64(g))
}

fn cmat(g: &mut Gen, m: usize, n: usize) -> CMat {
    let v: Vec<C64> = (0..m * n).map(|_| complex(g)).collect();
    CMat::from_rows(m, n, &v)
}

#[test]
fn complex_field_axioms() {
    check("complex_field_axioms", CASES, |g| {
        let a = complex(g);
        let b = complex(g);
        // Commutativity.
        prop_assert!(((a + b) - (b + a)).abs() < 1e-9);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-9);
        // Conjugation distributes.
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-6 * (1.0 + (a * b).abs()));
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6 * (1.0 + a.abs() * b.abs()));
        Ok(())
    });
}

#[test]
fn svd_reconstructs() {
    check("svd_reconstructs", CASES, |g| {
        let a = cmat(g, 3, 4);
        let d = svd(&a);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(d.reconstruct().approx_eq(&a, 1e-8 * scale), "U S V^H != A");
        prop_assert!(d.v.has_orthonormal_columns(1e-8), "V not unitary");
        // Singular values sorted, non-negative.
        for w in d.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(d.s.iter().all(|&x| x >= 0.0));
        // Energy identity.
        let energy: f64 = d.s.iter().map(|x| x * x).sum();
        prop_assert!((energy - a.frobenius_norm_sqr()).abs() < 1e-6 * (1.0 + energy));
        Ok(())
    });
}

#[test]
fn nullspace_annihilates() {
    check("nullspace_annihilates", CASES, |g| {
        let a = cmat(g, 2, 4);
        let d = svd(&a);
        let ns = d.nullspace(1e-9);
        prop_assert!(ns.cols() >= 2);
        let residual = a.matmul(&ns).max_abs();
        prop_assert!(residual < 1e-7 * (1.0 + a.max_abs()), "residual {residual}");
        Ok(())
    });
}

#[test]
fn lu_solves_what_it_factors() {
    check("lu_solves_what_it_factors", CASES, |g| {
        let a = cmat(g, 3, 3);
        let b = cmat(g, 3, 2);
        if let Ok(lu) = Lu::factor(&a) {
            let x = lu.solve(&b);
            let back = a.matmul(&x);
            let scale = b.frobenius_norm().max(a.frobenius_norm()).max(1.0);
            // Conditioning can inflate error; accept a generous bound and
            // just require the residual to be small relative to x's size.
            let xn = x.frobenius_norm().max(1.0);
            prop_assert!(back.approx_eq(&b, 1e-5 * scale * xn), "A x != b");
        }
        Ok(())
    });
}

#[test]
fn inverse_round_trips() {
    check("inverse_round_trips", CASES, |g| {
        let a = cmat(g, 2, 2);
        if let Ok(inv) = inverse(&a) {
            let xn = inv.frobenius_norm().max(1.0) * a.frobenius_norm().max(1.0);
            prop_assert!(a.matmul(&inv).approx_eq(&CMat::identity(2), 1e-6 * xn));
        }
        Ok(())
    });
}

#[test]
fn fft_round_trip() {
    // Random power-of-two lengths, 1e-12 relative round-trip bound: the
    // waveform path stacks an IFFT and an FFT per OFDM symbol, so the
    // transform pair must be far below any physical impairment floor.
    check("fft_round_trip", CASES, |g| {
        let n = 1usize << g.usize_in(0, 9);
        let x: Vec<C64> = (0..n).map(|_| complex(g)).collect();
        let y = ifft(&fft(&x));
        let scale = x.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!(
                (*a - *b).abs() <= 1e-12 * scale * n as f64,
                "n={n}: round-trip error {:e}",
                (*a - *b).abs() / scale
            );
        }
        Ok(())
    });
}

#[test]
fn fft_parseval() {
    // Energy conservation at random power-of-two lengths (1e-12 relative):
    // `sum |x|^2 == sum |X|^2 / n`.
    check("fft_parseval", CASES, |g| {
        let n = 1usize << g.usize_in(0, 9);
        let x: Vec<C64> = (0..n).map(|_| complex(g)).collect();
        let y = fft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!(
            (ex - ey).abs() <= 1e-12 * n as f64 * (1.0 + ex),
            "n={n}: energy {ex:e} vs {ey:e}"
        );
        Ok(())
    });
}

#[test]
fn erfc_bounds_and_symmetry() {
    check("erfc_bounds_and_symmetry", CASES, |g| {
        let x = g.f64_in(-5.0, 5.0);
        let v = erfc(x);
        prop_assert!((0.0..=2.0).contains(&v));
        prop_assert!((erfc(-x) - (2.0 - v)).abs() < 1e-9);
        let q = q_func(x);
        prop_assert!((0.0..=1.0).contains(&q));
        Ok(())
    });
}

#[test]
fn db_round_trip() {
    check("db_round_trip", CASES, |g| {
        let db = g.f64_in(-120.0, 60.0);
        prop_assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
        Ok(())
    });
}

#[test]
fn percentiles_are_order_statistics() {
    check("percentiles_are_order_statistics", CASES, |g| {
        let mut xs = g.vec_f64(-1e3, 1e3, 1, 40);
        let p = g.f64_in(0.0, 100.0);
        let v = percentile(&xs, p);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
        Ok(())
    });
}

#[test]
fn cdf_monotone() {
    check("cdf_monotone", CASES, |g| {
        let xs = g.vec_f64(-100.0, 100.0, 1, 50);
        let cdf = EmpiricalCdf::new(&xs);
        let mut prev = -1.0;
        for i in -10..=10 {
            let p = cdf.eval(i as f64 * 10.0);
            prop_assert!(p >= prev);
            prop_assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        Ok(())
    });
}

#[test]
fn replayed_generator_reproduces_reported_case() {
    // Guard for the harness contract the other suites rely on: the seed in
    // a failure report reconstructs the same inputs.
    let mut a = Gen::replay(0xC0FFEE, 1.0);
    let mut b = Gen::replay(0xC0FFEE, 1.0);
    let ma = cmat(&mut a, 3, 4);
    let mb = cmat(&mut b, 3, 4);
    assert!(ma.approx_eq(&mb, f64::MIN_POSITIVE));
    check("replay_contract", 4, |g| {
        prop_assert_eq!(g.usize_in(0, 10) < 10, true);
        Ok(())
    });
}
