//! Property suite: the batched SoA kernels are *bit-identical* to the scalar
//! kernels they replace, and the `erfc` table is exact at its nodes.
//!
//! The batched kernels (`svd_batch_into`, `solve_batch_into`,
//! `inverse_loaded_batch_into`, `CBatch::mul_into` / `hermitian_into`) are
//! required by design to replay the scalar complex operation sequence per
//! lane, so the engine's `KernelMode::Batched` path produces byte-identical
//! figures. These tests lock that contract down over randomized shapes and
//! seeds — any reassociation, fused multiply-add, or reordering sneaking
//! into the batch code shows up here as a `to_bits` mismatch.

use copa_num::solve::{Lu, SingularMatrix};
use copa_num::{
    inverse_loaded_batch_into, solve_batch_into, svd_batch_into, CBatch, CMat, ErfcTable,
    LuBatchScratch, LuScratch, SimRng, SvdBatch, SvdBatchScratch, SvdScratch,
};

/// Fills a `rows x cols` matrix with unit-variance complex Gaussians.
fn random_cmat(rng: &mut SimRng, rows: usize, cols: usize) -> CMat {
    let mut m = CMat::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.randc();
        }
    }
    m
}

/// Random square matrix with a diagonal kick so LU stays well-conditioned.
fn random_loaded(rng: &mut SimRng, n: usize) -> CMat {
    let mut m = random_cmat(rng, n, n);
    for i in 0..n {
        let d = m[(i, i)];
        m[(i, i)] = copa_num::C64::new(d.re + 3.0, d.im);
    }
    m
}

/// Loads `mats` as the lanes of a fresh `CBatch`.
fn to_batch(mats: &[CMat]) -> CBatch {
    let rows = mats[0].rows();
    let cols = mats[0].cols();
    let mut b = CBatch::new();
    b.reset(rows, cols, mats.len());
    for (l, m) in mats.iter().enumerate() {
        b.load_lane(l, m);
    }
    b
}

fn assert_lane_eq(batch: &CBatch, lane: usize, scalar: &CMat, what: &str) {
    assert_eq!(
        (batch.rows(), batch.cols()),
        (scalar.rows(), scalar.cols()),
        "{what}: shape"
    );
    for i in 0..scalar.rows() {
        for j in 0..scalar.cols() {
            let b = batch.get(i, j, lane);
            let s = scalar[(i, j)];
            assert_eq!(
                (b.re.to_bits(), b.im.to_bits()),
                (s.re.to_bits(), s.im.to_bits()),
                "{what}: lane {lane} entry ({i},{j}): batch {b:?} vs scalar {s:?}"
            );
        }
    }
}

/// Shapes covering every antenna configuration the engine can produce
/// (1..=4 antennas per side), tall, wide and square.
const SHAPES: &[(usize, usize)] = &[
    (1, 1),
    (2, 2),
    (2, 4),
    (4, 2),
    (3, 3),
    (4, 4),
    (1, 4),
    (4, 1),
];

/// Lane counts: degenerate, odd, and the full 52-subcarrier plane.
const LANES: &[usize] = &[1, 3, 52];

#[test]
fn svd_batch_is_bit_identical_to_scalar() {
    let mut scratch = SvdBatchScratch::new();
    let mut out = SvdBatch::default();
    let mut sc_scratch = SvdScratch::new();
    let mut sc_out = copa_num::Svd::default();
    for seed in [1u64, 0xC0FFEE, 0xDEAD_BEEF] {
        for &(m, n) in SHAPES {
            for &lanes in LANES {
                let mut rng =
                    SimRng::seed_from(seed ^ ((m as u64) << 8) ^ (n as u64 * lanes as u64));
                let mats: Vec<CMat> = (0..lanes).map(|_| random_cmat(&mut rng, m, n)).collect();
                let a = to_batch(&mats);
                svd_batch_into(&a, &mut scratch, &mut out);
                for (l, mat) in mats.iter().enumerate() {
                    copa_num::svd_into(mat, &mut sc_scratch, &mut sc_out);
                    assert_lane_eq(&out.u, l, &sc_out.u, "svd u");
                    assert_lane_eq(&out.v, l, &sc_out.v, "svd v");
                    assert_eq!(sc_out.s.len(), n, "scalar singular value count");
                    for (j, &s) in sc_out.s.iter().enumerate() {
                        assert_eq!(
                            out.s_at(j, l).to_bits(),
                            s.to_bits(),
                            "svd s: lane {l} value {j} ({m}x{n}, seed {seed:#x})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn svd_batch_rank_matches_scalar_rank() {
    let mut scratch = SvdBatchScratch::new();
    let mut out = SvdBatch::default();
    for &(m, n) in &[(2usize, 2usize), (4, 2), (3, 3)] {
        for &lanes in LANES {
            let mut rng = SimRng::seed_from(0xBADC_0DE ^ (m * 31 + n * 7 + lanes) as u64);
            let mats: Vec<CMat> = (0..lanes).map(|_| random_cmat(&mut rng, m, n)).collect();
            let a = to_batch(&mats);
            svd_batch_into(&a, &mut scratch, &mut out);
            for (l, mat) in mats.iter().enumerate() {
                let sc = copa_num::svd(mat);
                let smax = sc.s.first().copied().unwrap_or(0.0);
                let scalar_rank = sc.s.iter().filter(|&&s| s > 1e-12 * smax).count();
                assert_eq!(
                    out.rank_lane(1e-12, l),
                    scalar_rank,
                    "rank lane {l} ({m}x{n})"
                );
            }
        }
    }
}

#[test]
fn solve_batch_is_bit_identical_to_scalar_lu() -> Result<(), SingularMatrix> {
    let mut scratch = LuBatchScratch::new();
    let mut x = CBatch::new();
    let mut sc_x = CMat::zeros(0, 0);
    for seed in [7u64, 0xFEED] {
        for &n in &[1usize, 2, 3, 4] {
            for &rhs in &[1usize, 2, 4] {
                for &lanes in LANES {
                    let mut rng = SimRng::seed_from(
                        seed.wrapping_mul(0x9E37)
                            .wrapping_add((n * 64 + rhs * 8 + lanes) as u64),
                    );
                    let a_mats: Vec<CMat> =
                        (0..lanes).map(|_| random_loaded(&mut rng, n)).collect();
                    let b_mats: Vec<CMat> =
                        (0..lanes).map(|_| random_cmat(&mut rng, n, rhs)).collect();
                    let a = to_batch(&a_mats);
                    let b = to_batch(&b_mats);
                    solve_batch_into(&a, &b, &mut scratch, &mut x)?;
                    for l in 0..lanes {
                        let lu = Lu::factor(&a_mats[l])?;
                        lu.solve_into(&b_mats[l], &mut sc_x);
                        assert_lane_eq(&x, l, &sc_x, "solve x");
                    }
                }
            }
        }
    }
    Ok(())
}

#[test]
fn inverse_loaded_batch_is_bit_identical_to_scalar() {
    let mut scratch = LuBatchScratch::new();
    let mut out = CBatch::new();
    let mut sc_scratch = LuScratch::default();
    let mut sc_out = CMat::zeros(0, 0);
    // Engine-realistic loadings: the MMSE path uses noise_mw.max(1e-18) * 1e-9.
    for &eps in &[1e-9f64, 1e-12, 1e-27] {
        for &n in &[1usize, 2, 3, 4] {
            for &lanes in LANES {
                let mut rng =
                    SimRng::seed_from(0xA11CE ^ (n * 1024 + lanes) as u64 ^ eps.to_bits());
                // Hermitian PSD-ish inputs, as produced by H * H^H on the MMSE path.
                let mats: Vec<CMat> = (0..lanes)
                    .map(|_| {
                        let h = random_cmat(&mut rng, n, n);
                        let mut g = CMat::zeros(n, n);
                        for i in 0..n {
                            for j in 0..n {
                                let mut acc = copa_num::C64::new(0.0, 0.0);
                                for k in 0..n {
                                    acc = acc + h[(i, k)] * h[(j, k)].conj();
                                }
                                g[(i, j)] = acc;
                            }
                        }
                        g
                    })
                    .collect();
                let a = to_batch(&mats);
                inverse_loaded_batch_into(&a, eps, &mut scratch, &mut out);
                for (l, mat) in mats.iter().enumerate() {
                    inverse_loaded_into(mat, eps, &mut sc_scratch, &mut sc_out);
                    assert_lane_eq(&out, l, &sc_out, "inverse");
                }
            }
        }
    }
}

use copa_num::inverse_loaded_into;

#[test]
fn batch_mul_and_hermitian_are_bit_identical_to_scalar() {
    let mut rng = SimRng::seed_from(0x5EED);
    for &(m, k, n) in &[(2usize, 2usize, 2usize), (4, 2, 3), (1, 4, 1), (3, 3, 4)] {
        for &lanes in LANES {
            let a_mats: Vec<CMat> = (0..lanes).map(|_| random_cmat(&mut rng, m, k)).collect();
            let b_mats: Vec<CMat> = (0..lanes).map(|_| random_cmat(&mut rng, k, n)).collect();
            let a = to_batch(&a_mats);
            let b = to_batch(&b_mats);
            let mut c = CBatch::new();
            a.mul_into(&b, &mut c);
            let mut ah = CBatch::new();
            a.hermitian_into(&mut ah);
            for l in 0..lanes {
                let sc = a_mats[l].matmul(&b_mats[l]);
                assert_lane_eq(&c, l, &sc, "mul");
                let sch = a_mats[l].hermitian();
                assert_lane_eq(&ah, l, &sch, "hermitian");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// erfc table
// ---------------------------------------------------------------------------

/// Distance in ulps between two finite f64s of the same sign.
fn ulp_distance(a: f64, b: f64) -> u64 {
    let (x, y) = (a.to_bits(), b.to_bits());
    x.max(y) - x.min(y)
}

#[test]
fn erfc_table_nodes_are_within_one_ulp_of_exact() {
    for table in [ErfcTable::default_table(), ErfcTable::new(-4.0, 4.0, 513)] {
        for i in 0..table.nodes() {
            let x = table.node_x(i);
            let exact = copa_num::special::erfc(x);
            let stored = table.node_value(i);
            assert!(
                ulp_distance(stored, exact) <= 1,
                "node {i} (x={x}): stored {stored:e} vs exact {exact:e}"
            );
            // eval() at a node must route through the same stored value.
            assert!(
                ulp_distance(table.eval(x), exact) <= 1,
                "eval at node {i} (x={x}) disagrees with exact erfc"
            );
        }
    }
}

#[test]
fn erfc_table_is_monotone_between_nodes() {
    let table = ErfcTable::default_table();
    // Sample well off the node grid (prime count, irrational-ish offset) so
    // consecutive probes straddle node boundaries.
    let samples = 9973usize;
    let (x0, x1) = ErfcTable::DEFAULT_RANGE;
    let mut prev = table.eval(x0);
    for k in 1..=samples {
        let x = x0 + (x1 - x0) * (k as f64 + 0.317) / (samples as f64 + 1.0);
        let v = table.eval(x.min(x1));
        assert!(
            v <= prev,
            "erfc table not monotone: eval({x}) = {v} > previous {prev}"
        );
        prev = v;
    }
}
