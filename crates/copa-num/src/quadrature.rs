//! Gauss-Hermite quadrature.
//!
//! The mercury/waterfilling allocator needs the MMSE of a discrete
//! constellation on an AWGN channel, which is a Gaussian-weighted integral:
//! `int f(x) e^{-x^2} dx ~= sum w_i f(x_i)`. Nodes/weights are computed with
//! the classic Newton iteration on physicists' Hermite polynomials
//! (Numerical Recipes `gauher`).

use std::f64::consts::PI;

/// Nodes and weights for `int_{-inf}^{inf} f(x) e^{-x^2} dx ~= sum w_i f(x_i)`.
#[derive(Clone, Debug)]
pub struct GaussHermite {
    /// Quadrature nodes, symmetric about zero, ascending.
    pub nodes: Vec<f64>,
    /// Positive weights matching `nodes`.
    pub weights: Vec<f64>,
}

impl GaussHermite {
    /// Computes an `n`-point rule (exact for polynomials up to degree `2n-1`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "quadrature order must be positive");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        let mut z = 0.0f64;
        for i in 0..m {
            // Initial guesses for the roots (largest first), from NR.
            z = match i {
                0 => {
                    (2.0 * n as f64 + 1.0).sqrt()
                        - 1.85575 * (2.0 * n as f64 + 1.0).powf(-1.0 / 6.0)
                }
                1 => z - 1.14 * (n as f64).powf(0.426) / z,
                2 => 1.86 * z - 0.86 * nodes[n - 1],
                3 => 1.91 * z - 0.91 * nodes[n - 2],
                _ => 2.0 * z - nodes[n - i + 1],
            };
            // Newton iteration on H_n(z).
            let mut pp = 0.0;
            for _ in 0..100 {
                let mut p1 = PI.powf(-0.25);
                let mut p2 = 0.0;
                for j in 0..n {
                    let p3 = p2;
                    p2 = p1;
                    p1 = z * (2.0 / (j as f64 + 1.0)).sqrt() * p2
                        - (j as f64 / (j as f64 + 1.0)).sqrt() * p3;
                }
                pp = (2.0 * n as f64).sqrt() * p2;
                let dz = p1 / pp;
                z -= dz;
                if dz.abs() < 1e-15 {
                    break;
                }
            }
            nodes[n - 1 - i] = z;
            nodes[i] = -z;
            let w = 2.0 / (pp * pp);
            weights[n - 1 - i] = w;
            weights[i] = w;
        }
        GaussHermite { nodes, weights }
    }

    /// Evaluates `int f(x) e^{-x^2} dx`.
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }

    /// Evaluates the expectation `E[f(Z)]` for `Z ~ N(0, 1)`.
    pub fn gaussian_expectation(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        let c = 1.0 / PI.sqrt();
        c * self.integrate(|x| f(std::f64::consts::SQRT_2 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_gaussian_moments() {
        let gh = GaussHermite::new(20);
        // int e^{-x^2} dx = sqrt(pi)
        assert!((gh.integrate(|_| 1.0) - PI.sqrt()).abs() < 1e-12);
        // int x^2 e^{-x^2} dx = sqrt(pi)/2
        assert!((gh.integrate(|x| x * x) - PI.sqrt() / 2.0).abs() < 1e-12);
        // Odd moments vanish by symmetry.
        assert!(gh.integrate(|x| x * x * x).abs() < 1e-12);
        // int x^4 e^{-x^2} dx = 3 sqrt(pi)/4
        assert!((gh.integrate(|x| x.powi(4)) - 3.0 * PI.sqrt() / 4.0).abs() < 1e-11);
    }

    #[test]
    fn gaussian_expectation_of_standard_normal() {
        let gh = GaussHermite::new(32);
        assert!((gh.gaussian_expectation(|_| 1.0) - 1.0).abs() < 1e-12);
        assert!((gh.gaussian_expectation(|x| x * x) - 1.0).abs() < 1e-11);
        // E[cos(Z)] = e^{-1/2}.
        let expect = (-0.5f64).exp();
        assert!((gh.gaussian_expectation(f64::cos) - expect).abs() < 1e-9);
    }

    #[test]
    fn nodes_are_symmetric_and_sorted() {
        let gh = GaussHermite::new(15);
        for w in gh.nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        for i in 0..gh.nodes.len() {
            let j = gh.nodes.len() - 1 - i;
            assert!((gh.nodes[i] + gh.nodes[j]).abs() < 1e-12);
            assert!((gh.weights[i] - gh.weights[j]).abs() < 1e-12);
        }
        assert!(gh.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn weights_sum_to_sqrt_pi() {
        for &n in &[1usize, 2, 5, 16, 40] {
            let gh = GaussHermite::new(n);
            let sum: f64 = gh.weights.iter().sum();
            assert!((sum - PI.sqrt()).abs() < 1e-10, "n={n}: {sum}");
        }
    }
}
