//! Singular value decomposition of complex matrices.
//!
//! COPA's precoders are built from SVDs: transmit beamforming takes the
//! dominant right singular vectors of the channel, and nulling projects onto
//! the nullspace of the cross channel (the right singular vectors whose
//! singular values vanish). Channel matrices are tiny (antenna counts, <= 4),
//! so a one-sided Jacobi iteration is accurate, simple, and fast enough.
//!
//! The algorithm rotates pairs of columns of `A` with unitary 2x2 Givens-like
//! transforms until all columns are mutually orthogonal; the accumulated
//! rotations form `V` (always the full `n x n` unitary), the column norms are
//! the singular values, and the normalized columns form `U`.

use crate::complex::{C64, ZERO};
use crate::matrix::CMat;

/// Result of [`svd`]: `A = U * diag(s) * V^H`.
///
/// * `u` is `m x n`; columns beyond the rank are zero.
/// * `s` has length `n`, sorted in non-increasing order, all `>= 0`.
/// * `v` is `n x n` and exactly unitary (a product of unitary rotations).
///
/// When `m < n`, at most `m` singular values are nonzero and the trailing
/// columns of `v` span the nullspace of `A` -- exactly what transmit nulling
/// needs.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (columns; zero columns past the rank).
    pub u: CMat,
    /// Singular values, non-increasing.
    pub s: Vec<f64>,
    /// Right singular vectors (full unitary).
    pub v: CMat,
}

impl Svd {
    /// Numerical rank: number of singular values above `tol * s_max`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > rel_tol * smax).count()
    }

    /// Reconstructs `U * diag(s) * V^H`, mainly for testing.
    pub fn reconstruct(&self) -> CMat {
        let n = self.s.len();
        let mut us = self.u.clone();
        for j in 0..n {
            for i in 0..us.rows() {
                us[(i, j)] = us[(i, j)].scale(self.s[j]);
            }
        }
        us.matmul(&self.v.hermitian())
    }

    /// Orthonormal basis of the nullspace: columns of `V` whose singular
    /// value is `<= rel_tol * s_max` (all columns if `A == 0`).
    pub fn nullspace(&self, rel_tol: f64) -> CMat {
        let r = self.rank(rel_tol);
        let cols: Vec<usize> = (r..self.s.len()).collect();
        self.v.select_columns(&cols)
    }

    /// [`Svd::nullspace`] writing into a caller-owned matrix. Bit-identical
    /// (plain copies of the same `V` columns), but allocation-free.
    pub fn nullspace_into(&self, rel_tol: f64, out: &mut CMat) {
        let r = self.rank(rel_tol);
        let n = self.s.len();
        out.reset(self.v.rows(), n - r);
        for i in 0..self.v.rows() {
            for j in 0..(n - r) {
                out[(i, j)] = self.v[(i, r + j)];
            }
        }
    }
}

impl Default for Svd {
    /// An empty decomposition, useful as a reusable output slot in scratch
    /// workspaces (its buffers grow on first use and are then reused).
    fn default() -> Self {
        Svd {
            u: CMat::zeros(0, 0),
            s: Vec::new(),
            v: CMat::zeros(0, 0),
        }
    }
}

/// Reusable working storage for [`svd_into`]. One instance per worker thread
/// (or per [`copa-core` workspace]) serves every subcarrier: the buffers grow
/// to the largest shape seen and are then reused allocation-free.
#[derive(Clone, Debug, Default)]
pub struct SvdScratch {
    /// Working copy of `A`, rotated into `A * V`.
    w: CMat,
    /// Accumulated rotations (unsorted `V`).
    v: CMat,
    /// Column norms of `w` after convergence.
    norms: Vec<f64>,
    /// Column permutation sorting singular values non-increasing.
    order: Vec<usize>,
}

impl SvdScratch {
    /// A fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Maximum number of full Jacobi sweeps before giving up. Tiny matrices
/// converge in a handful; 64 is a generous safety margin.
const MAX_SWEEPS: usize = 64;

/// Computes the SVD of an arbitrary complex matrix by one-sided Jacobi.
///
/// Allocating convenience wrapper around [`svd_into`]; the two are
/// bit-identical by construction (same code path).
pub fn svd(a: &CMat) -> Svd {
    let mut scratch = SvdScratch::new();
    let mut out = Svd::default();
    svd_into(a, &mut scratch, &mut out);
    out
}

// alloc-free: begin svd_into (per-subcarrier kernel -- no Vec::new / vec!)
/// One-sided Jacobi SVD writing into caller-owned buffers. After warm-up at
/// the largest shape in play, performs zero heap allocations per call.
pub fn svd_into(a: &CMat, scratch: &mut SvdScratch, out: &mut Svd) {
    let m = a.rows();
    let n = a.cols();
    let w = &mut scratch.w; // becomes A * V
    w.copy_from(a);
    let v = &mut scratch.v;
    v.reset(n, n);
    for i in 0..n {
        v[(i, i)] = crate::complex::ONE;
    }

    // Convergence threshold relative to the matrix scale.
    let scale = w.frobenius_norm().max(1e-300);
    let tol = 1e-14 * scale * scale;

    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // 2x2 Gram submatrix of columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = ZERO;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp.norm_sqr();
                    aqq += wq.norm_sqr();
                    apq += wp.conj() * wq;
                }
                let c_abs = apq.abs();
                off = off.max(c_abs);
                if c_abs <= tol {
                    continue;
                }
                // Unitary rotation J = [[cs, -sn e^{i phi}], [sn e^{-i phi}, cs]]
                // with apq = |apq| e^{i phi}, chosen so the rotated columns are
                // orthogonal: tan(2 theta) = 2|apq| / (app - aqq).
                let phase = apq / C64::real(c_abs); // e^{i phi}
                let zeta = (app - aqq) / (2.0 * c_abs);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let cs = 1.0 / (1.0 + t * t).sqrt();
                let sn = cs * t;
                let e_m = phase.conj(); // e^{-i phi}
                let e_p = phase; // e^{+i phi}

                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = wp.scale(cs) + e_m * wq.scale(sn);
                    w[(i, q)] = -e_p * wp.scale(sn) + wq.scale(cs);
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = vp.scale(cs) + e_m * vq.scale(sn);
                    v[(i, q)] = -e_p * vp.scale(sn) + vq.scale(cs);
                }
            }
        }
        if off <= tol {
            break;
        }
    }

    // Column norms are the singular values; normalize to get U.
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..n);
    let norms = &mut scratch.norms;
    norms.clear();
    norms.extend((0..n).map(|j| (0..m).map(|i| w[(i, j)].norm_sqr()).sum::<f64>().sqrt()));
    order.sort_by(|&a, &b| norms[b].total_cmp(&norms[a]));

    let s = &mut out.s;
    s.clear();
    let u = &mut out.u;
    u.reset(m, n);
    let v_sorted = &mut out.v;
    v_sorted.reset(n, n);
    let sv_floor = 1e-14 * scale;
    for (jj, &j) in order.iter().enumerate() {
        s.push(norms[j]);
        if norms[j] > sv_floor {
            for i in 0..m {
                u[(i, jj)] = w[(i, j)].scale(1.0 / norms[j]);
            }
        }
        for i in 0..n {
            v_sorted[(i, jj)] = v[(i, j)];
        }
    }
}
// alloc-free: end svd_into

/// Orthonormal basis of the nullspace of `a` (columns of `V` with singular
/// value below `rel_tol * s_max`). Shorthand for `svd(a).nullspace(rel_tol)`.
pub fn nullspace(a: &CMat, rel_tol: f64) -> CMat {
    svd(a).nullspace(rel_tol)
}

// alloc-free: begin cond_into (per-subcarrier kernel -- no Vec::new / vec!)
/// Spectral condition number `s_max / s_min` of `a`, where `s_min` is the
/// smallest of the `min(m, n)` *structural* singular values (trailing
/// structurally-zero values of a wide matrix do not count). Rank-deficient
/// and empty matrices report `f64::INFINITY`: they are infinitely
/// ill-conditioned as far as precoding is concerned.
///
/// Reuses the caller's [`SvdScratch`] and [`Svd`] slot, so after warm-up at
/// the largest shape in play the estimate is allocation-free -- cheap enough
/// to screen every per-subcarrier channel before it reaches the precoders.
pub fn cond_into(a: &CMat, scratch: &mut SvdScratch, out: &mut Svd) -> f64 {
    let k = a.rows().min(a.cols());
    if k == 0 {
        return f64::INFINITY;
    }
    svd_into(a, scratch, out);
    let smax = out.s[0];
    let smin = out.s[k - 1];
    if smin > 0.0 && smax.is_finite() {
        smax / smin
    } else {
        f64::INFINITY
    }
}
// alloc-free: end cond_into

/// Allocating convenience wrapper around [`cond_into`]; bit-identical by
/// construction (same code path).
pub fn cond(a: &CMat) -> f64 {
    cond_into(a, &mut SvdScratch::new(), &mut Svd::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn random_mat(rng: &mut SimRng, m: usize, n: usize) -> CMat {
        CMat::from_fn(m, n, |_, _| rng.randc())
    }

    #[test]
    fn reconstructs_random_matrices() {
        let mut rng = SimRng::seed_from(42);
        for &(m, n) in &[
            (1, 1),
            (2, 2),
            (3, 2),
            (2, 3),
            (4, 4),
            (2, 4),
            (4, 2),
            (6, 3),
        ] {
            let a = random_mat(&mut rng, m, n);
            let d = svd(&a);
            assert!(
                d.reconstruct().approx_eq(&a, 1e-9),
                "reconstruction failed for {m}x{n}"
            );
            assert!(
                d.v.has_orthonormal_columns(1e-10),
                "V not unitary ({m}x{n})"
            );
        }
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let mut rng = SimRng::seed_from(7);
        let a = random_mat(&mut rng, 4, 4);
        let d = svd(&a);
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn u_columns_orthonormal_up_to_rank() {
        let mut rng = SimRng::seed_from(9);
        let a = random_mat(&mut rng, 4, 3);
        let d = svd(&a);
        let r = d.rank(1e-10);
        assert_eq!(r, 3);
        let u_r = d.u.select_columns(&(0..r).collect::<Vec<_>>());
        assert!(u_r.has_orthonormal_columns(1e-9));
    }

    #[test]
    fn diagonal_matrix_svd_is_diagonal() {
        let a = CMat::diag_real(&[3.0, 1.0, 2.0]);
        let d = svd(&a);
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!((d.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_matrix_detected() {
        // Second column is a multiple of the first.
        let c1 = [C64::new(1.0, 0.5), C64::new(-0.5, 2.0), C64::new(0.0, 1.0)];
        let a = CMat::from_fn(3, 2, |i, j| {
            if j == 0 {
                c1[i]
            } else {
                c1[i] * C64::new(2.0, -1.0)
            }
        });
        let d = svd(&a);
        assert_eq!(d.rank(1e-10), 1);
        assert!(d.s[1] < 1e-10 * d.s[0]);
    }

    #[test]
    fn nullspace_is_annihilated_by_matrix() {
        // A wide matrix (2 x 4), like a 2-antenna client observed from a
        // 4-antenna AP: nullspace has dimension 2.
        let mut rng = SimRng::seed_from(11);
        let a = random_mat(&mut rng, 2, 4);
        let ns = nullspace(&a, 1e-10);
        assert_eq!(ns.cols(), 2);
        assert!(ns.has_orthonormal_columns(1e-9));
        let residual = a.matmul(&ns);
        assert!(
            residual.max_abs() < 1e-9,
            "A * nullspace(A) should vanish, got {}",
            residual.max_abs()
        );
    }

    #[test]
    fn nullspace_of_zero_matrix_is_everything() {
        let a = CMat::zeros(2, 3);
        let ns = nullspace(&a, 1e-10);
        assert_eq!(ns.cols(), 3);
        assert!(ns.has_orthonormal_columns(1e-10));
    }

    #[test]
    fn frobenius_norm_equals_singular_value_energy() {
        let mut rng = SimRng::seed_from(21);
        let a = random_mat(&mut rng, 3, 4);
        let d = svd(&a);
        let sv_energy: f64 = d.s.iter().map(|x| x * x).sum();
        assert!((sv_energy - a.frobenius_norm_sqr()).abs() < 1e-9);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let a = CMat::diag_real(&[1.0, 1.0, 1.0]);
        assert!((cond(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cond_matches_singular_value_ratio() {
        let a = CMat::diag_real(&[8.0, 2.0, 0.5]);
        assert!((cond(&a) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn cond_of_wide_matrix_ignores_structural_zeros() {
        // A full-rank 2x4 matrix has two nonzero singular values; the two
        // structurally-zero trailing values must not force cond = inf.
        let mut rng = SimRng::seed_from(71);
        let a = random_mat(&mut rng, 2, 4);
        let c = cond(&a);
        assert!(c.is_finite() && c >= 1.0, "cond {c}");
        let d = svd(&a);
        assert!((c - d.s[0] / d.s[1]).abs() < 1e-9 * c);
    }

    #[test]
    fn cond_of_rank_deficient_matrix_is_huge_or_infinite() {
        // Exactly-dependent columns land on a smallest singular value at
        // roundoff level, so cond is either infinite or astronomically
        // large -- either way far past any sane quarantine threshold.
        let c1 = [C64::new(1.0, 0.5), C64::new(-0.5, 2.0)];
        let a = CMat::from_fn(2, 2, |i, j| if j == 0 { c1[i] } else { c1[i].scale(3.0) });
        assert!(cond(&a) > 1e12, "cond {}", cond(&a));
        assert_eq!(cond(&CMat::zeros(2, 3)), f64::INFINITY);
        assert_eq!(cond(&CMat::zeros(0, 0)), f64::INFINITY);
    }

    #[test]
    fn cond_into_is_bit_identical_to_cond_and_reuses_scratch() {
        let mut rng = SimRng::seed_from(72);
        let mut scratch = SvdScratch::new();
        let mut out = Svd::default();
        for &(m, n) in &[(2, 2), (2, 4), (4, 2), (3, 3)] {
            let a = random_mat(&mut rng, m, n);
            let via_scratch = cond_into(&a, &mut scratch, &mut out);
            assert_eq!(via_scratch.to_bits(), cond(&a).to_bits(), "{m}x{n}");
        }
    }

    #[test]
    fn beamforming_gain_matches_top_singular_value() {
        // Transmitting along the top right singular vector achieves gain
        // s_max^2 -- the core of SVD beamforming.
        let mut rng = SimRng::seed_from(33);
        let h = random_mat(&mut rng, 2, 4);
        let d = svd(&h);
        let v0 = d.v.column(0);
        let rx = h.matmul(&v0);
        let gain = rx.frobenius_norm_sqr();
        assert!((gain - d.s[0] * d.s[0]).abs() < 1e-9);
    }
}
