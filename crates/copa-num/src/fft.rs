//! Radix-2 FFT for OFDM channel synthesis.
//!
//! The channel simulator models multipath as a tapped delay line in the time
//! domain and converts it to per-subcarrier frequency responses with a
//! 64-point FFT (the 20 MHz 802.11 OFDM FFT size). Sizes must be powers of
//! two, which is all OFDM ever needs here.

use crate::complex::{C64, ZERO};
use std::f64::consts::PI;

/// In-place forward FFT (`X[k] = sum_n x[n] e^{-2 pi i n k / N}`).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft_in_place(x: &mut [C64]) {
    transform(x, -1.0);
}

/// In-place inverse FFT, normalized by `1/N` so `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft_in_place(x: &mut [C64]) {
    transform(x, 1.0);
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(1.0 / n);
    }
}

/// Out-of-place forward FFT.
pub fn fft(x: &[C64]) -> Vec<C64> {
    let mut y = x.to_vec();
    fft_in_place(&mut y);
    y
}

/// Out-of-place inverse FFT (normalized).
pub fn ifft(x: &[C64]) -> Vec<C64> {
    let mut y = x.to_vec();
    ifft_in_place(&mut y);
    y
}

// alloc-free: begin fft_into (kernel -- caller-owned output buffer)
/// [`fft`] writing into a caller-owned buffer (cleared and refilled; no
/// allocation once `out` has grown to the input length). Bit-identical to
/// the owned version (same copy, same in-place transform).
pub fn fft_into(x: &[C64], out: &mut Vec<C64>) {
    out.clear();
    out.extend_from_slice(x);
    fft_in_place(out);
}

/// [`ifft`] writing into a caller-owned buffer (see [`fft_into`]).
pub fn ifft_into(x: &[C64], out: &mut Vec<C64>) {
    out.clear();
    out.extend_from_slice(x);
    ifft_in_place(out);
}
// alloc-free: end fft_into

/// Frequency response of a sparse tapped delay line on an `n`-point grid:
/// `H[k] = sum_t g_t e^{-2 pi i k d_t / n}` for taps `(delay d_t, gain g_t)`.
///
/// Equivalent to zero-padding the impulse response to length `n` and calling
/// [`fft`], but tolerates delays beyond `n` (they wrap, as aliasing would).
pub fn tapped_delay_response(taps: &[(usize, C64)], n: usize) -> Vec<C64> {
    let mut out = Vec::new();
    tapped_delay_response_into(taps, n, &mut out);
    out
}

// alloc-free: begin tapped_delay_response_into (kernel -- no Vec::new / vec!)
/// [`tapped_delay_response`] writing into a caller-owned buffer: builds the
/// impulse response in `out` and transforms it in place. Bit-identical to
/// the allocating version (same accumulation, same in-place FFT).
pub fn tapped_delay_response_into(taps: &[(usize, C64)], n: usize, out: &mut Vec<C64>) {
    out.clear();
    out.resize(n, ZERO);
    for &(delay, gain) in taps {
        out[delay % n] += gain;
    }
    fft_in_place(out);
}
// alloc-free: end tapped_delay_response_into

fn transform(x: &mut [C64], sign: f64) {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) as usize;
        if j > i {
            x.swap(i, j);
        }
    }

    // Iterative Cooley-Tukey butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = C64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = C64::real(1.0);
            for j in 0..len / 2 {
                let u = x[i + j];
                let v = x[i + j + len / 2] * w;
                x[i + j] = u + v;
                x[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn close(a: &[C64], b: &[C64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![ZERO; 8];
        x[0] = C64::real(1.0);
        let y = fft(&x);
        assert!(y.iter().all(|z| (*z - C64::real(1.0)).abs() < 1e-12));
    }

    #[test]
    fn delayed_impulse_has_linear_phase() {
        let n = 64;
        let mut x = vec![ZERO; n];
        x[3] = C64::real(1.0);
        let y = fft(&x);
        for (k, z) in y.iter().enumerate() {
            let expected = C64::cis(-2.0 * PI * 3.0 * k as f64 / n as f64);
            assert!((*z - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn round_trip_identity() {
        let mut rng = SimRng::seed_from(5);
        for &n in &[1usize, 2, 4, 8, 64, 128] {
            let x: Vec<C64> = (0..n).map(|_| rng.randc()).collect();
            let y = ifft(&fft(&x));
            assert!(close(&x, &y, 1e-10), "round trip failed for n={n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let mut rng = SimRng::seed_from(6);
        let n = 64;
        let x: Vec<C64> = (0..n).map(|_| rng.randc()).collect();
        let y = fft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn linearity() {
        let mut rng = SimRng::seed_from(8);
        let n = 16;
        let a: Vec<C64> = (0..n).map(|_| rng.randc()).collect();
        let b: Vec<C64> = (0..n).map(|_| rng.randc()).collect();
        let sum: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expect: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(close(&fsum, &expect, 1e-10));
    }

    #[test]
    fn tapped_delay_matches_explicit_fft() {
        let taps = [
            (0usize, C64::new(0.8, 0.1)),
            (2, C64::new(-0.3, 0.4)),
            (5, C64::real(0.1)),
        ];
        let n = 64;
        let h = tapped_delay_response(&taps, n);
        let mut impulse = vec![ZERO; n];
        for &(d, g) in &taps {
            impulse[d] += g;
        }
        assert!(close(&h, &fft(&impulse), 1e-12));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![ZERO; 12];
        fft_in_place(&mut x);
    }

    #[test]
    fn into_variants_are_bit_identical_and_reusable() {
        let mut rng = SimRng::seed_from(9);
        let mut fwd = Vec::new();
        let mut inv = Vec::new();
        // Reuse the buffers across lengths to prove statelessness.
        for &n in &[64usize, 16, 128] {
            let x: Vec<C64> = (0..n).map(|_| rng.randc()).collect();
            fft_into(&x, &mut fwd);
            ifft_into(&x, &mut inv);
            let owned_f = fft(&x);
            let owned_i = ifft(&x);
            for i in 0..n {
                assert_eq!(owned_f[i].re.to_bits(), fwd[i].re.to_bits());
                assert_eq!(owned_f[i].im.to_bits(), fwd[i].im.to_bits());
                assert_eq!(owned_i[i].re.to_bits(), inv[i].re.to_bits());
                assert_eq!(owned_i[i].im.to_bits(), inv[i].im.to_bits());
            }
        }
    }
}
