//! # copa-num
//!
//! Self-contained numerics for the COPA (CoNEXT 2015) reproduction: complex
//! arithmetic, small dense complex matrices, LU solves, one-sided Jacobi SVD,
//! radix-2 FFT, special functions (erfc / Gaussian Q), Gauss-Hermite
//! quadrature, summary statistics, and a deterministic RNG.
//!
//! Everything is implemented from scratch: the workspace deliberately avoids
//! external linear-algebra or DSP crates so the whole signal-processing chain
//! is auditable in one place. Matrices are tiny (antenna counts, at most 4),
//! so clarity is preferred over blocked/SIMD kernels throughout.

#![warn(missing_docs)]

pub mod batch;
pub mod complex;
pub mod fft;
pub mod matrix;
pub mod prop;
pub mod quadrature;
pub mod rng;
pub mod solve;
pub mod special;
pub mod stats;
pub mod svd;
pub mod tables;

pub use batch::{
    inverse_loaded_batch_into, solve_batch_into, svd_batch_into, CBatch, LuBatchScratch, SvdBatch,
    SvdBatchScratch,
};
pub use complex::C64;
pub use matrix::CMat;
pub use rng::SimRng;
pub use solve::{inverse_loaded_into, LuScratch};
pub use svd::{cond, cond_into, nullspace, svd, svd_into, Svd, SvdScratch};
pub use tables::{gauss_hermite_cached, ErfcTable};
