//! Deterministic random sampling helpers.
//!
//! Every stochastic component in this workspace (channel taps, shadowing,
//! impairment noise, DCF backoff) is seeded explicitly so experiments and
//! tests are reproducible run-to-run. [`SimRng`] wraps a SplitMix64 stream
//! with the Gaussian/complex-Gaussian samplers the channel model needs.

use crate::complex::C64;
use std::f64::consts::PI;

/// A small, fast, deterministic PRNG (SplitMix64) with Gaussian samplers.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period, and being 9 lines of
/// code is trivially portable -- statistical quality far beyond what a
/// channel simulator needs.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Different seeds give independent
    /// streams for all practical purposes.
    pub fn seed_from(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift with negligible bias for the small n used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal sample (Box-Muller).
    pub fn randn(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    /// Circularly-symmetric complex Gaussian `CN(0, 1)`:
    /// real and imaginary parts each `N(0, 1/2)`.
    pub fn randc(&mut self) -> C64 {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        C64::new(self.randn() * s, self.randn() * s)
    }

    /// Derives an independent child stream; use to give each topology /
    /// subcarrier / link its own reproducible stream.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::seed_from(99);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn randn_moments() {
        let mut rng = SimRng::seed_from(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.randn()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn randc_unit_power() {
        let mut rng = SimRng::seed_from(8);
        let n = 100_000;
        let power: f64 = (0..n).map(|_| rng.randc().norm_sqr()).sum::<f64>() / n as f64;
        assert!((power - 1.0).abs() < 0.02, "E|z|^2 = {power}");
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut rng = SimRng::seed_from(10);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forked_streams_are_independent_of_parent_consumption() {
        let mut parent = SimRng::seed_from(55);
        let mut child = parent.fork(1);
        let c1: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        // The child stream is self-contained once created.
        let mut child2 = child.clone();
        let c2: Vec<u64> = (0..10).map(|_| child2.next_u64()).collect();
        assert_ne!(c1, c2); // child already consumed its values
    }
}
