//! Linear solves and inversion for small complex systems.
//!
//! MMSE receive filtering and SINR computation need `R^{-1}` for covariance
//! matrices no larger than 4x4, so plain LU with partial pivoting is both
//! sufficient and easy to audit.

use crate::complex::{C64, ZERO};
use crate::matrix::CMat;

/// Error returned when a matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// LU decomposition with partial pivoting of a square complex matrix.
///
/// Stores the combined L (unit lower) / U factors in-place plus the row
/// permutation, and can then solve any number of right-hand sides.
#[derive(Debug)]
pub struct Lu {
    n: usize,
    lu: CMat,
    perm: Vec<usize>,
}

// alloc-free: begin lu_kernels (per-subcarrier kernel -- no Vec::new / vec!)

/// In-place LU factorization with partial pivoting. `perm` must arrive as
/// the identity permutation `0..n`; on return it holds the row permutation.
/// Shared by [`Lu::factor`] and the scratch-based paths, so the two are
/// bit-identical by construction.
fn factor_in_place(lu: &mut CMat, perm: &mut [usize]) -> Result<(), SingularMatrix> {
    let n = lu.rows();
    for k in 0..n {
        // Partial pivot: largest |entry| in column k at or below the diagonal.
        let mut p = k;
        let mut best = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < 1e-300 {
            return Err(SingularMatrix);
        }
        if p != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(p, j)];
                lu[(p, j)] = tmp;
            }
            perm.swap(k, p);
        }
        let piv = lu[(k, k)];
        for i in (k + 1)..n {
            let m = lu[(i, k)] / piv;
            lu[(i, k)] = m;
            for j in (k + 1)..n {
                let s = m * lu[(k, j)];
                lu[(i, j)] -= s;
            }
        }
    }
    Ok(())
}

/// Forward/back substitution on a row-permuted right-hand side held in `x`.
fn substitute_in_place(lu: &CMat, x: &mut CMat) {
    let n = lu.rows();
    let m = x.cols();
    // Forward substitution (L has unit diagonal).
    for i in 1..n {
        for k in 0..i {
            let l = lu[(i, k)];
            if l == ZERO {
                continue;
            }
            for j in 0..m {
                let s = l * x[(k, j)];
                x[(i, j)] -= s;
            }
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            let u = lu[(i, k)];
            if u == ZERO {
                continue;
            }
            for j in 0..m {
                let s = u * x[(k, j)];
                x[(i, j)] -= s;
            }
        }
        let d = lu[(i, i)];
        for j in 0..m {
            x[(i, j)] /= d;
        }
    }
}
// alloc-free: end lu_kernels

impl Lu {
    /// Factorizes `a`. Fails if `a` is singular to working precision.
    pub fn factor(a: &CMat) -> Result<Lu, SingularMatrix> {
        assert!(a.is_square(), "LU of non-square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        factor_in_place(&mut lu, &mut perm)?;
        Ok(Lu { n, lu, perm })
    }

    /// Solves `A x = b` for a multi-column right-hand side.
    pub fn solve(&self, b: &CMat) -> CMat {
        let mut x = CMat::zeros(0, 0);
        self.solve_into(b, &mut x);
        x
    }

    /// [`Lu::solve`] writing into a caller-owned matrix (bit-identical,
    /// allocation-free after warm-up).
    pub fn solve_into(&self, b: &CMat, x: &mut CMat) {
        assert_eq!(b.rows(), self.n, "rhs row mismatch");
        let m = b.cols();
        // Apply permutation.
        x.reset(self.n, m);
        for i in 0..self.n {
            for j in 0..m {
                x[(i, j)] = b[(self.perm[i], j)];
            }
        }
        substitute_in_place(&self.lu, x);
    }

    /// Determinant from the U diagonal and permutation sign.
    pub fn det(&self) -> C64 {
        let mut d = C64::real(self.sign());
        for i in 0..self.n {
            d *= self.lu[(i, i)];
        }
        d
    }

    fn sign(&self) -> f64 {
        // Count permutation inversions parity via cycle decomposition.
        let mut seen = vec![false; self.n];
        let mut sign = 1.0;
        for i in 0..self.n {
            if seen[i] {
                continue;
            }
            let mut j = i;
            let mut len = 0;
            while !seen[j] {
                seen[j] = true;
                j = self.perm[j];
                len += 1;
            }
            if len % 2 == 0 {
                sign = -sign;
            }
        }
        sign
    }
}

/// Solves `A x = b`. Convenience wrapper around [`Lu`].
pub fn solve(a: &CMat, b: &CMat) -> Result<CMat, SingularMatrix> {
    Ok(Lu::factor(a)?.solve(b))
}

/// Cholesky factorization of a Hermitian positive-definite matrix:
/// `A = L L^H` with `L` lower triangular (real positive diagonal).
///
/// Used to color i.i.d. channel matrices with an antenna correlation
/// structure (the Kronecker model). Fails on non-positive-definite input.
pub fn cholesky(a: &CMat) -> Result<CMat, SingularMatrix> {
    assert!(a.is_square(), "Cholesky of non-square matrix");
    let n = a.rows();
    let mut l = CMat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)].conj();
            }
            if i == j {
                if sum.re <= 0.0 || sum.im.abs() > 1e-9 * sum.re.abs().max(1e-300) {
                    return Err(SingularMatrix);
                }
                l[(i, j)] = C64::real(sum.re.sqrt());
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Inverts a square complex matrix.
pub fn inverse(a: &CMat) -> Result<CMat, SingularMatrix> {
    let n = a.rows();
    Ok(Lu::factor(a)?.solve(&CMat::identity(n)))
}

/// Inverts `A + eps*I`; the standard diagonally-loaded inverse used when a
/// covariance matrix may be rank-deficient (e.g. zero interference plus
/// vanishing noise in synthetic tests).
pub fn inverse_loaded(a: &CMat, eps: f64) -> CMat {
    let n = a.rows();
    let mut m = a.clone();
    for i in 0..n {
        m[(i, i)] += C64::real(eps);
    }
    inverse(&m).expect("diagonally loaded matrix must be invertible")
}

/// Reusable working storage for [`inverse_loaded_into`]: the LU factors and
/// the row permutation, grown once and reused across subcarriers.
#[derive(Clone, Debug, Default)]
pub struct LuScratch {
    lu: CMat,
    perm: Vec<usize>,
}

impl LuScratch {
    /// A fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

// alloc-free: begin inverse_loaded_into (per-subcarrier kernel -- no Vec::new / vec!)
/// [`inverse_loaded`] writing into a caller-owned matrix. Runs the same
/// factor and substitution code as the allocating path ([`factor_in_place`]
/// / [`substitute_in_place`]), so results are bit-identical, but performs no
/// heap allocation after warm-up.
pub fn inverse_loaded_into(a: &CMat, eps: f64, scratch: &mut LuScratch, out: &mut CMat) {
    let n = a.rows();
    scratch.lu.copy_from(a);
    for i in 0..n {
        scratch.lu[(i, i)] += C64::real(eps);
    }
    scratch.perm.clear();
    scratch.perm.extend(0..n);
    factor_in_place(&mut scratch.lu, &mut scratch.perm)
        .expect("diagonally loaded matrix must be invertible");
    // Right-hand side is the identity; applying the row permutation to it
    // puts a one in column `perm[i]` of row `i`.
    out.reset(n, n);
    for i in 0..n {
        out[(i, scratch.perm[i])] = crate::complex::ONE;
    }
    substitute_in_place(&scratch.lu, out);
}
// alloc-free: end inverse_loaded_into

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::I;

    #[test]
    fn solve_identity() {
        let a = CMat::identity(3);
        let b = CMat::from_fn(3, 1, |i, _| C64::real(i as f64 + 1.0));
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&b, 1e-12));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = CMat::from_rows(
            2,
            2,
            &[C64::new(1.0, 1.0), C64::real(2.0), I, C64::new(3.0, -1.0)],
        );
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&CMat::identity(2), 1e-10));
        assert!(inv.matmul(&a).approx_eq(&CMat::identity(2), 1e-10));
    }

    #[test]
    fn solve_recovers_known_solution() {
        // Build A and x, compute b = A x, then solve back.
        let a = CMat::from_rows(
            3,
            3,
            &[
                C64::real(4.0),
                C64::new(0.0, 1.0),
                C64::real(-2.0),
                C64::new(0.0, -1.0),
                C64::real(5.0),
                C64::real(1.0),
                C64::real(-2.0),
                C64::real(1.0),
                C64::real(6.0),
            ],
        );
        let x_true = CMat::from_rows(3, 1, &[C64::new(1.0, 2.0), C64::real(-1.0), I]);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = CMat::from_rows(
            2,
            2,
            &[
                C64::real(1.0),
                C64::real(2.0),
                C64::real(2.0),
                C64::real(4.0),
            ],
        );
        assert_eq!(Lu::factor(&a).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = CMat::from_rows(
            2,
            2,
            &[
                C64::real(0.0),
                C64::real(1.0),
                C64::real(1.0),
                C64::real(0.0),
            ],
        );
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&CMat::identity(2), 1e-12));
    }

    #[test]
    fn determinant_of_permutation_and_diagonal() {
        let a = CMat::from_rows(
            2,
            2,
            &[
                C64::real(0.0),
                C64::real(1.0),
                C64::real(1.0),
                C64::real(0.0),
            ],
        );
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - C64::real(-1.0)).abs() < 1e-12);

        let d = CMat::diag_real(&[2.0, 3.0, 4.0]);
        let lu = Lu::factor(&d).unwrap();
        assert!((lu.det() - C64::real(24.0)).abs() < 1e-12);
    }

    #[test]
    fn cholesky_factors_hermitian_pd() {
        // Build A = B B^H + I (guaranteed PD), factor, and reconstruct.
        let b = CMat::from_rows(
            3,
            3,
            &[
                C64::new(1.0, 0.5),
                C64::real(2.0),
                I,
                C64::real(-1.0),
                C64::new(0.0, -2.0),
                C64::real(0.5),
                C64::new(1.0, 1.0),
                C64::real(0.0),
                C64::real(3.0),
            ],
        );
        let mut a = b.matmul(&b.hermitian());
        for i in 0..3 {
            a[(i, i)] += C64::real(1.0);
        }
        let l = cholesky(&a).unwrap();
        assert!(l.matmul(&l.hermitian()).approx_eq(&a, 1e-9));
        // Lower triangular with positive real diagonal.
        for i in 0..3 {
            assert!(l[(i, i)].re > 0.0 && l[(i, i)].im.abs() < 1e-12);
            for j in (i + 1)..3 {
                assert_eq!(l[(i, j)], crate::complex::ZERO);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = CMat::from_rows(
            2,
            2,
            &[
                C64::real(1.0),
                C64::real(2.0),
                C64::real(2.0),
                C64::real(1.0),
            ],
        );
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn cholesky_of_exponential_correlation() {
        // The exponential correlation matrix rho^|i-j| is PD for |rho|<1.
        let rho = 0.7f64;
        let a = CMat::from_fn(4, 4, |i, j| {
            C64::real(rho.powi((i as i32 - j as i32).abs()))
        });
        let l = cholesky(&a).unwrap();
        assert!(l.matmul(&l.hermitian()).approx_eq(&a, 1e-10));
    }

    #[test]
    fn loaded_inverse_of_singular_matrix_is_finite() {
        let a = CMat::zeros(3, 3);
        let inv = inverse_loaded(&a, 1e-9);
        assert!(inv.as_slice().iter().all(|z| z.is_finite()));
    }
}
