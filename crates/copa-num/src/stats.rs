//! Summary statistics and empirical CDFs.
//!
//! The paper's evaluation reports throughput CDFs across topologies
//! (Figures 10-13) plus means, medians and "fraction of topologies where X
//! beats Y" statistics; this module provides those primitives.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0 for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Median (linear interpolation of the two middle order statistics).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Percentile `p` in `[0, 100]` with linear interpolation between order
/// statistics. Returns `NaN` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Fraction of pairwise comparisons where `a[i] > b[i]` (strictly).
///
/// This is the paper's "scheme A beats scheme B in X% of topologies" metric.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn fraction_greater(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired comparison needs equal lengths");
    if a.is_empty() {
        return f64::NAN;
    }
    a.iter().zip(b).filter(|(x, y)| x > y).count() as f64 / a.len() as f64
}

/// Mean of per-pair relative improvement `(a - b) / b`, skipping pairs with
/// `b == 0`. The paper's "COPA improves nulling's throughput by a mean of X%".
pub fn mean_relative_improvement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let vals: Vec<f64> = a
        .iter()
        .zip(b)
        .filter(|(_, y)| **y != 0.0)
        .map(|(x, y)| (x - y) / y)
        .collect();
    mean(&vals)
}

/// Median of per-pair relative improvement `(a - b) / b`.
pub fn median_relative_improvement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let vals: Vec<f64> = a
        .iter()
        .zip(b)
        .filter(|(_, y)| **y != 0.0)
        .map(|(x, y)| (x - y) / y)
        .collect();
    median(&vals)
}

/// An empirical CDF: sorted sample values and their cumulative probabilities.
#[derive(Clone, Debug)]
pub struct EmpiricalCdf {
    /// Sorted samples.
    pub values: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from samples (copies and sorts them).
    pub fn new(samples: &[f64]) -> Self {
        let mut values = samples.to_vec();
        values.sort_by(f64::total_cmp);
        Self { values }
    }

    /// `P[X <= x]`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let n = self.values.partition_point(|&v| v <= x);
        n as f64 / self.values.len() as f64
    }

    /// Points `(value, cumulative_probability)` for plotting; probability at
    /// index `i` is `(i+1)/n`.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.values.len() as f64;
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// Inverse CDF at probability `p` in `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        percentile(&self.values, p * 100.0)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((median(&xs) - 4.5).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.13808993).abs() < 1e-6);
        assert!(mean(&[]).is_nan());
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
        // Order should not matter.
        let shuffled = [40.0, 10.0, 30.0, 20.0];
        assert!((percentile(&shuffled, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_metrics() {
        let a = [2.0, 1.0, 3.0, 4.0];
        let b = [1.0, 2.0, 2.0, 4.0];
        assert!((fraction_greater(&a, &b) - 0.5).abs() < 1e-12);
        // improvements: 1.0, -0.5, 0.5, 0.0 -> mean 0.25, median 0.25
        assert!((mean_relative_improvement(&a, &b) - 0.25).abs() < 1e-12);
        assert!((median_relative_improvement(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cdf_eval_and_quantile() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.eval(0.5) - 0.0).abs() < 1e-12);
        assert!((cdf.eval(2.0) - 0.5).abs() < 1e-12);
        assert!((cdf.eval(10.0) - 1.0).abs() < 1e-12);
        assert!((cdf.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((cdf.quantile(1.0) - 4.0).abs() < 1e-12);
        let pts = cdf.points();
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[3], (4.0, 1.0));
    }

    #[test]
    fn cdf_is_monotone() {
        let cdf = EmpiricalCdf::new(&[5.0, 1.0, 3.0, 3.0, 9.0]);
        let mut prev = -1.0;
        for x in (0..120).map(|i| i as f64 / 10.0) {
            let p = cdf.eval(x);
            assert!(p >= prev);
            prev = p;
        }
    }
}
