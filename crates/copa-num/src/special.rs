//! Special functions and dB conversions used by the PHY error models.

/// Complementary error function, `erfc(x) = 2/sqrt(pi) * int_x^inf e^{-t^2} dt`.
///
/// Rational Chebyshev approximation (Numerical Recipes `erfcc`): fractional
/// error below `1.2e-7` for all `x`, which comfortably covers bit error rates
/// down to the `1e-12` regime the 802.11n MCS tables care about.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian tail probability `Q(x) = P[N(0,1) > x] = erfc(x / sqrt(2)) / 2`.
///
/// The fundamental building block of uncoded BER formulas.
pub fn q_func(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Converts a power ratio to decibels. `lin <= 0` maps to `-inf`.
pub fn lin_to_db(lin: f64) -> f64 {
    if lin <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * lin.log10()
    }
}

/// Converts decibels to a linear power ratio.
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    lin_to_db(mw)
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_lin(dbm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001222),
            (1.0, 0.1572992070),
            (2.0, 0.0046777349),
            (3.0, 2.209049699e-5),
            (4.0, 1.541725790e-8),
        ];
        for (x, expect) in cases {
            let got = erfc(x);
            assert!(
                ((got - expect) / expect).abs() < 1e-6,
                "erfc({x}) = {got}, want {expect}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.5, 3.0] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn q_function_properties() {
        // The erfc approximation has ~1e-7 fractional error, so Q(0) is 0.5
        // only to that accuracy.
        assert!((q_func(0.0) - 0.5).abs() < 1e-6);
        // Monotone decreasing.
        let mut prev = q_func(-5.0);
        for i in -49..=50 {
            let q = q_func(i as f64 / 10.0);
            assert!(q < prev);
            prev = q;
        }
        // Q(1.0) reference.
        assert!((q_func(1.0) - 0.15865525).abs() < 1e-6);
        // Tail: Q(6) ~ 9.87e-10.
        assert!((q_func(6.0) / 9.8659e-10 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn db_round_trips() {
        for &db in &[-100.0, -30.0, 0.0, 3.0, 20.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
        }
        assert_eq!(lin_to_db(0.0), f64::NEG_INFINITY);
        assert!((db_to_lin(3.0) - 1.9952623).abs() < 1e-6);
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((mw_to_dbm(100.0) - 20.0).abs() < 1e-12);
    }
}
