//! Complex arithmetic for baseband signal processing.
//!
//! Wireless channels, precoding matrices and OFDM subcarrier gains are all
//! complex-valued. This module provides a small, allocation-free complex
//! number type [`C64`] with the operations the rest of the workspace needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i*im`.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The complex zero.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The complex one.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit `i`.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}`: a unit-magnitude phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2` (received *power* of a signal sample).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness near overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns an all-infinite value when `z == 0`, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return ZERO;
        }
        // sqrt in polar form, with a numerically stable half-angle construction.
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// `true` when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert!(close(z + ZERO, z));
        assert!(close(z * ONE, z));
        assert!(close(z - z, ZERO));
        assert!(close(z * z.inv(), ONE));
        assert!(close(z / z, ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), C64::real(25.0)));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..32 {
            let t = k as f64 * 0.41;
            assert!((C64::cis(t).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = C64::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z:?}) = {s:?}");
            assert!(s.re >= 0.0, "principal branch");
        }
        assert_eq!(ZERO.sqrt(), ZERO);
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(-0.25, 4.0);
        assert!(close(a / b, a * b.inv()));
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // Phasors evenly spread around the circle sum to zero -- this is the
        // cancellation principle behind transmit nulling.
        let n = 8;
        let s: C64 = (0..n)
            .map(|k| C64::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .sum();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn scalar_ops() {
        let z = C64::new(1.0, 2.0);
        assert!(close(z * 2.0, C64::new(2.0, 4.0)));
        assert!(close(2.0 * z, C64::new(2.0, 4.0)));
        assert!(close(z / 2.0, C64::new(0.5, 1.0)));
    }
}
