//! Batched structure-of-arrays kernels over many same-shape matrices.
//!
//! The OFDM hot path applies the same tiny-matrix operation (SVD, loaded
//! inverse, multiply) to one matrix per data subcarrier — 52 independent
//! problems of identical shape. [`CBatch`] stores all of them in split
//! re/im `f64` planes with the *lane* (subcarrier) index fastest-moving:
//! entry `(i, j)` of lane `l` lives at `plane[(i*cols + j)*lanes + l]`.
//! Inner loops therefore walk contiguous `f64` slices across lanes and
//! carry no per-subcarrier dispatch or allocation.
//!
//! Every batched kernel replays, per lane, the exact floating-point op
//! sequence of its scalar counterpart in [`crate::matrix`], [`crate::svd`]
//! and [`crate::solve`] — data-dependent branches (the matmul zero skip,
//! the Jacobi pair tolerance skip, per-lane sweep convergence, LU partial
//! pivoting) are kept as per-lane predicates. Results are bit-identical to
//! running the scalar kernel 52 times, which is what keeps the engine's
//! determinism/journal/resume guarantees intact; only the memory layout
//! changes. `crates/copa-num/tests/prop_batch.rs` proves this over random
//! shapes and seeds.

use crate::complex::{C64, ONE, ZERO};
use crate::matrix::CMat;
use crate::solve::SingularMatrix;

/// A batch of `lanes` same-shape complex matrices in split re/im planes.
///
/// `Default` is the empty `0 x 0 x 0` batch; buffers grow on first use and
/// are reused allocation-free afterwards (the same contract as [`CMat`]
/// scratch buffers).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CBatch {
    rows: usize,
    cols: usize,
    lanes: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl CBatch {
    /// A fresh empty batch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows of each matrix in the batch.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of each matrix in the batch.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of lanes (matrices) in the batch.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, l: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols && l < self.lanes);
        (i * self.cols + j) * self.lanes + l
    }

    /// Entry `(i, j)` of lane `l`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, l: usize) -> C64 {
        let k = self.idx(i, j, l);
        C64::new(self.re[k], self.im[k])
    }

    /// Sets entry `(i, j)` of lane `l`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, l: usize, z: C64) {
        let k = self.idx(i, j, l);
        self.re[k] = z.re;
        self.im[k] = z.im;
    }

    // alloc-free: begin cbatch_kernels (batched subcarrier kernels -- no Vec::new / vec!)

    /// Reshapes to an all-zero `rows x cols x lanes` batch, reusing buffers.
    pub fn reset(&mut self, rows: usize, cols: usize, lanes: usize) {
        self.rows = rows;
        self.cols = cols;
        self.lanes = lanes;
        let n = rows * cols * lanes;
        self.re.clear();
        self.re.resize(n, 0.0);
        self.im.clear();
        self.im.resize(n, 0.0);
    }

    /// Makes `self` a copy of `src` (shape and entries), reusing buffers.
    pub fn copy_from(&mut self, src: &CBatch) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.lanes = src.lanes;
        self.re.clear();
        self.re.extend_from_slice(&src.re);
        self.im.clear();
        self.im.extend_from_slice(&src.im);
    }

    /// Gathers one [`CMat`] into lane `l` (shape must match the batch).
    pub fn load_lane(&mut self, l: usize, m: &CMat) {
        assert_eq!((m.rows(), m.cols()), (self.rows, self.cols), "lane shape");
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.set(i, j, l, m[(i, j)]);
            }
        }
    }

    /// Scatters lane `l` back out to a [`CMat`] (reshaping it).
    pub fn store_lane(&self, l: usize, out: &mut CMat) {
        out.reset(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = self.get(i, j, l);
            }
        }
    }

    /// Per-lane Frobenius norm, summed in the same row-major entry order as
    /// [`CMat::frobenius_norm`] so the result is bit-identical.
    pub fn frobenius_norm_lane(&self, l: usize) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                sum += self.get(i, j, l).norm_sqr();
            }
        }
        sum.sqrt()
    }

    /// Per-lane squared Frobenius norm (same entry order as
    /// [`CMat::frobenius_norm_sqr`]).
    pub fn frobenius_norm_sqr_lane(&self, l: usize) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                sum += self.get(i, j, l).norm_sqr();
            }
        }
        sum
    }

    /// Batched matrix product `self * rhs` into `out`, every lane following
    /// the exact loop order and zero-entry skip of [`CMat::mul_into`], so
    /// each lane's result is bit-identical to the scalar kernel.
    pub fn mul_into(&self, rhs: &CBatch, out: &mut CBatch) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        assert_eq!(self.lanes, rhs.lanes, "lane count mismatch");
        out.reset(self.rows, rhs.cols, self.lanes);
        for i in 0..self.rows {
            for k in 0..self.cols {
                for j in 0..rhs.cols {
                    let ob = out.idx(i, j, 0);
                    let ab = self.idx(i, k, 0);
                    let bb = rhs.idx(k, j, 0);
                    for l in 0..self.lanes {
                        let a = C64::new(self.re[ab + l], self.im[ab + l]);
                        // Same skip as the scalar kernel: adding a 0-product
                        // is not bit-transparent (-0.0 + 0.0 == +0.0).
                        if a == ZERO {
                            continue;
                        }
                        let b = C64::new(rhs.re[bb + l], rhs.im[bb + l]);
                        let s = a * b;
                        out.re[ob + l] += s.re;
                        out.im[ob + l] += s.im;
                    }
                }
            }
        }
    }

    /// Batched Hermitian transpose into `out` (per lane bit-identical to
    /// [`CMat::hermitian_into`]).
    pub fn hermitian_into(&self, out: &mut CBatch) {
        out.reset(self.cols, self.rows, self.lanes);
        for i in 0..self.cols {
            for j in 0..self.rows {
                let ob = out.idx(i, j, 0);
                let ab = self.idx(j, i, 0);
                for l in 0..self.lanes {
                    out.re[ob + l] = self.re[ab + l];
                    out.im[ob + l] = -self.im[ab + l];
                }
            }
        }
    }

    /// Batched entrywise `self += rhs` on every lane (per lane bit-identical
    /// to [`CMat::add_in_place`]).
    pub fn add_in_place(&mut self, rhs: &CBatch) {
        assert_eq!(
            (self.rows, self.cols, self.lanes),
            (rhs.rows, rhs.cols, rhs.lanes)
        );
        for (a, b) in self.re.iter_mut().zip(&rhs.re) {
            *a += *b;
        }
        for (a, b) in self.im.iter_mut().zip(&rhs.im) {
            *a += *b;
        }
    }

    /// Entrywise `self += rhs` on the lanes where `mask` is true; masked-out
    /// lanes are untouched (not even `+= 0.0`, which would flip `-0.0`).
    pub fn add_in_place_masked(&mut self, rhs: &CBatch, mask: &[bool]) {
        assert_eq!(
            (self.rows, self.cols, self.lanes),
            (rhs.rows, rhs.cols, rhs.lanes)
        );
        assert_eq!(mask.len(), self.lanes);
        for e in 0..self.rows * self.cols {
            let b = e * self.lanes;
            for (l, &on) in mask.iter().enumerate() {
                if on {
                    self.re[b + l] += rhs.re[b + l];
                    self.im[b + l] += rhs.im[b + l];
                }
            }
        }
    }

    /// Entrywise `self += rhs * factor` on the lanes where `mask` is true
    /// (the per-entry op is `dst + src.scale(factor)`, matching the scalar
    /// carrier-leakage fold); masked-out lanes are untouched.
    pub fn add_scaled_in_place_masked(&mut self, rhs: &CBatch, factor: f64, mask: &[bool]) {
        assert_eq!(
            (self.rows, self.cols, self.lanes),
            (rhs.rows, rhs.cols, rhs.lanes)
        );
        assert_eq!(mask.len(), self.lanes);
        for e in 0..self.rows * self.cols {
            let b = e * self.lanes;
            for (l, &on) in mask.iter().enumerate() {
                if on {
                    let dst = C64::new(self.re[b + l], self.im[b + l]);
                    let src = C64::new(rhs.re[b + l], rhs.im[b + l]);
                    let sum = dst + src.scale(factor);
                    self.re[b + l] = sum.re;
                    self.im[b + l] = sum.im;
                }
            }
        }
    }

    /// Copies column `j` of every lane into `out` as a `rows x 1` batch
    /// (per lane bit-identical to [`CMat::column_into`]).
    pub fn column_into(&self, j: usize, out: &mut CBatch) {
        assert!(j < self.cols);
        out.reset(self.rows, 1, self.lanes);
        for i in 0..self.rows {
            let ob = out.idx(i, 0, 0);
            let ab = self.idx(i, j, 0);
            out.re[ob..ob + self.lanes].copy_from_slice(&self.re[ab..ab + self.lanes]);
            out.im[ob..ob + self.lanes].copy_from_slice(&self.im[ab..ab + self.lanes]);
        }
    }

    // alloc-free: end cbatch_kernels
}

/// Result of [`svd_batch_into`]: per lane, `A_l = U_l * diag(s_l) * V_l^H`.
#[derive(Clone, Debug, Default)]
pub struct SvdBatch {
    /// Left singular vectors per lane (zero columns past the rank).
    pub u: CBatch,
    /// Singular values: `s[j * lanes + l]` is the `j`-th (non-increasing)
    /// singular value of lane `l`.
    pub s: Vec<f64>,
    /// Right singular vectors per lane (full unitary).
    pub v: CBatch,
}

impl SvdBatch {
    /// The `j`-th singular value of lane `l`.
    #[inline]
    pub fn s_at(&self, j: usize, l: usize) -> f64 {
        self.s[j * self.u.lanes() + l]
    }

    /// Numerical rank of lane `l` (same rule as [`crate::svd::Svd::rank`]).
    pub fn rank_lane(&self, rel_tol: f64, l: usize) -> usize {
        let n = self.v.cols();
        let smax = if n == 0 { 0.0 } else { self.s_at(0, l) };
        if smax == 0.0 {
            return 0;
        }
        (0..n)
            .take_while(|&j| self.s_at(j, l) > rel_tol * smax)
            .count()
    }
}

/// Reusable working storage for [`svd_batch_into`].
#[derive(Clone, Debug, Default)]
pub struct SvdBatchScratch {
    w: CBatch,
    v: CBatch,
    tol: Vec<f64>,
    active: Vec<bool>,
    off: Vec<f64>,
    app: Vec<f64>,
    aqq: Vec<f64>,
    apq_re: Vec<f64>,
    apq_im: Vec<f64>,
    rot: Vec<bool>,
    ph_re: Vec<f64>,
    ph_im: Vec<f64>,
    cs: Vec<f64>,
    sn: Vec<f64>,
    norms: Vec<f64>,
    order: Vec<usize>,
}

impl SvdBatchScratch {
    /// A fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

const MAX_SWEEPS: usize = 64;

// alloc-free: begin svd_batch_into (batched subcarrier kernel -- no Vec::new / vec!)
/// One-sided Jacobi SVD of every lane at once.
///
/// Per lane this replays [`crate::svd::svd_into`] exactly: the same sweep
/// order, the same per-pair `c_abs <= tol` skip, the same per-lane sweep
/// convergence break, the same norm/sort/normalize epilogue — so each
/// lane's `(u, s, v)` is bit-identical to the scalar kernel. The Gram
/// accumulation and rotations run lane-innermost over contiguous planes.
pub fn svd_batch_into(a: &CBatch, scratch: &mut SvdBatchScratch, out: &mut SvdBatch) {
    let m = a.rows();
    let n = a.cols();
    let lanes = a.lanes();
    let w = &mut scratch.w;
    w.copy_from(a);
    let v = &mut scratch.v;
    v.reset(n, n, lanes);
    for i in 0..n {
        for l in 0..lanes {
            v.set(i, i, l, ONE);
        }
    }

    let tol = &mut scratch.tol;
    tol.clear();
    let active = &mut scratch.active;
    active.clear();
    for l in 0..lanes {
        let scale = w.frobenius_norm_lane(l).max(1e-300);
        tol.push(1e-14 * scale * scale);
        active.push(true);
    }

    let off = &mut scratch.off;
    off.clear();
    off.resize(lanes, 0.0);
    let app = &mut scratch.app;
    let aqq = &mut scratch.aqq;
    let apq_re = &mut scratch.apq_re;
    let apq_im = &mut scratch.apq_im;
    let rot = &mut scratch.rot;
    let ph_re = &mut scratch.ph_re;
    let ph_im = &mut scratch.ph_im;
    let cs = &mut scratch.cs;
    let sn = &mut scratch.sn;
    for buf in [&mut *app, &mut *aqq, &mut *apq_re, &mut *apq_im] {
        buf.clear();
        buf.resize(lanes, 0.0);
    }
    for buf in [&mut *ph_re, &mut *ph_im, &mut *cs, &mut *sn] {
        buf.clear();
        buf.resize(lanes, 0.0);
    }
    rot.clear();
    rot.resize(lanes, false);

    for _ in 0..MAX_SWEEPS {
        if !active.iter().any(|&x| x) {
            break;
        }
        for l in 0..lanes {
            off[l] = 0.0;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                // 2x2 Gram submatrices of columns p, q, all lanes at once
                // (per lane: the same i-ordered accumulation as the scalar
                // kernel).
                for l in 0..lanes {
                    app[l] = 0.0;
                    aqq[l] = 0.0;
                    apq_re[l] = 0.0;
                    apq_im[l] = 0.0;
                }
                for i in 0..m {
                    let pb = w.idx(i, p, 0);
                    let qb = w.idx(i, q, 0);
                    for l in 0..lanes {
                        let wp = C64::new(w.re[pb + l], w.im[pb + l]);
                        let wq = C64::new(w.re[qb + l], w.im[qb + l]);
                        app[l] += wp.norm_sqr();
                        aqq[l] += wq.norm_sqr();
                        let c = wp.conj() * wq;
                        apq_re[l] += c.re;
                        apq_im[l] += c.im;
                    }
                }
                let mut any_rot = false;
                for l in 0..lanes {
                    rot[l] = false;
                    if !active[l] {
                        continue;
                    }
                    let apq = C64::new(apq_re[l], apq_im[l]);
                    let c_abs = apq.abs();
                    off[l] = off[l].max(c_abs);
                    if c_abs <= tol[l] {
                        continue;
                    }
                    let phase = apq / C64::real(c_abs);
                    let zeta = (app[l] - aqq[l]) / (2.0 * c_abs);
                    let t = if zeta >= 0.0 {
                        1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                    } else {
                        -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                    };
                    cs[l] = 1.0 / (1.0 + t * t).sqrt();
                    sn[l] = cs[l] * t;
                    ph_re[l] = phase.re;
                    ph_im[l] = phase.im;
                    rot[l] = true;
                    any_rot = true;
                }
                if !any_rot {
                    continue;
                }
                for i in 0..m {
                    let pb = w.idx(i, p, 0);
                    let qb = w.idx(i, q, 0);
                    for l in 0..lanes {
                        if !rot[l] {
                            continue;
                        }
                        let e_p = C64::new(ph_re[l], ph_im[l]);
                        let e_m = e_p.conj();
                        let wp = C64::new(w.re[pb + l], w.im[pb + l]);
                        let wq = C64::new(w.re[qb + l], w.im[qb + l]);
                        let np = wp.scale(cs[l]) + e_m * wq.scale(sn[l]);
                        let nq = -e_p * wp.scale(sn[l]) + wq.scale(cs[l]);
                        w.re[pb + l] = np.re;
                        w.im[pb + l] = np.im;
                        w.re[qb + l] = nq.re;
                        w.im[qb + l] = nq.im;
                    }
                }
                for i in 0..n {
                    let pb = v.idx(i, p, 0);
                    let qb = v.idx(i, q, 0);
                    for l in 0..lanes {
                        if !rot[l] {
                            continue;
                        }
                        let e_p = C64::new(ph_re[l], ph_im[l]);
                        let e_m = e_p.conj();
                        let vp = C64::new(v.re[pb + l], v.im[pb + l]);
                        let vq = C64::new(v.re[qb + l], v.im[qb + l]);
                        let np = vp.scale(cs[l]) + e_m * vq.scale(sn[l]);
                        let nq = -e_p * vp.scale(sn[l]) + vq.scale(cs[l]);
                        v.re[pb + l] = np.re;
                        v.im[pb + l] = np.im;
                        v.re[qb + l] = nq.re;
                        v.im[qb + l] = nq.im;
                    }
                }
            }
        }
        for l in 0..lanes {
            if active[l] && off[l] <= tol[l] {
                active[l] = false;
            }
        }
    }

    // Per-lane epilogue: column norms, sort, normalize -- identical to the
    // scalar kernel's, run lane by lane (tiny n, not on the O(m*n*lanes)
    // path).
    out.u.reset(m, n, lanes);
    out.v.reset(n, n, lanes);
    out.s.clear();
    out.s.resize(n * lanes, 0.0);
    let norms = &mut scratch.norms;
    let order = &mut scratch.order;
    for l in 0..lanes {
        order.clear();
        order.extend(0..n);
        norms.clear();
        for j in 0..n {
            let mut sum = 0.0;
            for i in 0..m {
                sum += w.get(i, j, l).norm_sqr();
            }
            norms.push(sum.sqrt());
        }
        order.sort_by(|&a, &b| norms[b].total_cmp(&norms[a]));
        // sv_floor = 1e-14 * scale, recomputed from the input exactly as
        // the scalar kernel derives it (tol stores scale^2, which would
        // round under sqrt).
        let scale = a.frobenius_norm_lane(l).max(1e-300);
        let sv_floor = 1e-14 * scale;
        for (jj, &j) in order.iter().enumerate() {
            out.s[jj * lanes + l] = norms[j];
            if norms[j] > sv_floor {
                for i in 0..m {
                    out.u.set(i, jj, l, w.get(i, j, l).scale(1.0 / norms[j]));
                }
            }
            for i in 0..n {
                out.v.set(i, jj, l, v.get(i, j, l));
            }
        }
    }
}
// alloc-free: end svd_batch_into

/// Reusable working storage for [`inverse_loaded_batch_into`] and
/// [`solve_batch_into`]: batched LU factors, per-lane permutations and
/// per-lane pivot/multiplier staging.
#[derive(Clone, Debug, Default)]
pub struct LuBatchScratch {
    lu: CBatch,
    perm: Vec<usize>,
}

impl LuBatchScratch {
    /// A fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

// alloc-free: begin lu_batch_kernels (batched subcarrier kernels -- no Vec::new / vec!)

/// Batched in-place LU factorization with per-lane partial pivoting; per
/// lane bit-identical to `factor_in_place` in [`crate::solve`]. `perm` is
/// laid out `[row * lanes + lane]` and must arrive as the identity in every
/// lane. Fails (like the scalar kernel) if any lane is singular.
fn factor_in_place_batch(lu: &mut CBatch, perm: &mut [usize]) -> Result<(), SingularMatrix> {
    let n = lu.rows();
    let lanes = lu.lanes();
    for k in 0..n {
        for l in 0..lanes {
            // Partial pivot: largest |entry| in column k at or below the
            // diagonal, per lane.
            let mut p = k;
            let mut best = lu.get(k, k, l).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k, l).abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(SingularMatrix);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu.get(k, j, l);
                    lu.set(k, j, l, lu.get(p, j, l));
                    lu.set(p, j, l, tmp);
                }
                perm.swap(k * lanes + l, p * lanes + l);
            }
        }
        for i in (k + 1)..n {
            let mb = lu.idx(i, k, 0);
            let kb = lu.idx(k, k, 0);
            for l in 0..lanes {
                let m =
                    C64::new(lu.re[mb + l], lu.im[mb + l]) / C64::new(lu.re[kb + l], lu.im[kb + l]);
                lu.re[mb + l] = m.re;
                lu.im[mb + l] = m.im;
            }
            for j in (k + 1)..n {
                let ib = lu.idx(i, j, 0);
                let kb = lu.idx(k, j, 0);
                let mb = lu.idx(i, k, 0);
                for l in 0..lanes {
                    let m = C64::new(lu.re[mb + l], lu.im[mb + l]);
                    let s = m * C64::new(lu.re[kb + l], lu.im[kb + l]);
                    lu.re[ib + l] -= s.re;
                    lu.im[ib + l] -= s.im;
                }
            }
        }
    }
    Ok(())
}

/// Batched forward/back substitution; per lane bit-identical to
/// `substitute_in_place` in [`crate::solve`] (including the zero-entry
/// skips, which become per-lane predicates).
fn substitute_in_place_batch(lu: &CBatch, x: &mut CBatch) {
    let n = lu.rows();
    let m = x.cols();
    let lanes = lu.lanes();
    // Forward substitution (L has unit diagonal).
    for i in 1..n {
        for k in 0..i {
            let lb = lu.idx(i, k, 0);
            for j in 0..m {
                let xb = x.idx(i, j, 0);
                let kb = x.idx(k, j, 0);
                for ln in 0..lanes {
                    let l = C64::new(lu.re[lb + ln], lu.im[lb + ln]);
                    if l == ZERO {
                        continue;
                    }
                    let s = l * C64::new(x.re[kb + ln], x.im[kb + ln]);
                    x.re[xb + ln] -= s.re;
                    x.im[xb + ln] -= s.im;
                }
            }
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            let ub = lu.idx(i, k, 0);
            for j in 0..m {
                let xb = x.idx(i, j, 0);
                let kb = x.idx(k, j, 0);
                for ln in 0..lanes {
                    let u = C64::new(lu.re[ub + ln], lu.im[ub + ln]);
                    if u == ZERO {
                        continue;
                    }
                    let s = u * C64::new(x.re[kb + ln], x.im[kb + ln]);
                    x.re[xb + ln] -= s.re;
                    x.im[xb + ln] -= s.im;
                }
            }
        }
        let db = lu.idx(i, i, 0);
        for j in 0..m {
            let xb = x.idx(i, j, 0);
            for ln in 0..lanes {
                let d = C64::new(lu.re[db + ln], lu.im[db + ln]);
                let q = C64::new(x.re[xb + ln], x.im[xb + ln]) / d;
                x.re[xb + ln] = q.re;
                x.im[xb + ln] = q.im;
            }
        }
    }
}

/// Batched [`crate::solve::inverse_loaded_into`]: inverts `A_l + eps*I` for
/// every lane at once, per lane bit-identical to the scalar kernel.
///
/// # Panics
/// Panics if any loaded lane is singular to working precision (same
/// contract and message as the scalar kernel).
pub fn inverse_loaded_batch_into(
    a: &CBatch,
    eps: f64,
    scratch: &mut LuBatchScratch,
    out: &mut CBatch,
) {
    let n = a.rows();
    let lanes = a.lanes();
    scratch.lu.copy_from(a);
    for i in 0..n {
        let db = scratch.lu.idx(i, i, 0);
        for l in 0..lanes {
            scratch.lu.re[db + l] += eps;
        }
    }
    scratch.perm.clear();
    for i in 0..n {
        for _ in 0..lanes {
            scratch.perm.push(i);
        }
    }
    factor_in_place_batch(&mut scratch.lu, &mut scratch.perm)
        .expect("diagonally loaded matrix must be invertible");
    out.reset(n, n, lanes);
    for i in 0..n {
        for l in 0..lanes {
            out.set(i, scratch.perm[i * lanes + l], l, ONE);
        }
    }
    substitute_in_place_batch(&scratch.lu, out);
}

/// Batched linear solve `A_l X_l = B_l` for every lane at once; per lane
/// bit-identical to [`crate::solve::Lu::factor`] + `solve_into`. Fails if
/// any lane is singular.
pub fn solve_batch_into(
    a: &CBatch,
    b: &CBatch,
    scratch: &mut LuBatchScratch,
    x: &mut CBatch,
) -> Result<(), SingularMatrix> {
    let n = a.rows();
    let lanes = a.lanes();
    assert_eq!(b.rows(), n, "rhs row mismatch");
    assert_eq!(b.lanes(), lanes, "lane count mismatch");
    scratch.lu.copy_from(a);
    scratch.perm.clear();
    for i in 0..n {
        for _ in 0..lanes {
            scratch.perm.push(i);
        }
    }
    factor_in_place_batch(&mut scratch.lu, &mut scratch.perm)?;
    let m = b.cols();
    x.reset(n, m, lanes);
    for i in 0..n {
        for j in 0..m {
            for l in 0..lanes {
                x.set(i, j, l, b.get(scratch.perm[i * lanes + l], j, l));
            }
        }
    }
    substitute_in_place_batch(&scratch.lu, x);
    Ok(())
}

// alloc-free: end lu_batch_kernels

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::solve::{inverse_loaded_into, LuScratch};
    use crate::svd::{svd_into, Svd, SvdScratch};

    fn random_mats(rng: &mut SimRng, m: usize, n: usize, lanes: usize) -> Vec<CMat> {
        (0..lanes)
            .map(|_| CMat::from_fn(m, n, |_, _| rng.randc()))
            .collect()
    }

    fn gather(mats: &[CMat]) -> CBatch {
        let mut b = CBatch::new();
        b.reset(mats[0].rows(), mats[0].cols(), mats.len());
        for (l, m) in mats.iter().enumerate() {
            b.load_lane(l, m);
        }
        b
    }

    fn lanes_eq(b: &CBatch, mats: &[CMat]) -> bool {
        mats.iter().enumerate().all(|(l, m)| {
            (0..m.rows()).all(|i| {
                (0..m.cols()).all(|j| {
                    let x = b.get(i, j, l);
                    let y = m[(i, j)];
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
                })
            })
        })
    }

    #[test]
    fn load_store_round_trips() {
        let mut rng = SimRng::seed_from(1);
        let mats = random_mats(&mut rng, 3, 2, 5);
        let b = gather(&mats);
        let mut back = CMat::zeros(0, 0);
        for (l, m) in mats.iter().enumerate() {
            b.store_lane(l, &mut back);
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn mul_matches_scalar_per_lane() {
        let mut rng = SimRng::seed_from(2);
        for &(m, k, n, lanes) in &[(2, 4, 2, 7), (4, 4, 1, 3), (1, 2, 3, 52)] {
            let a = random_mats(&mut rng, m, k, lanes);
            let b = random_mats(&mut rng, k, n, lanes);
            let (ba, bb) = (gather(&a), gather(&b));
            let mut out = CBatch::new();
            ba.mul_into(&bb, &mut out);
            let expect: Vec<CMat> = a.iter().zip(&b).map(|(x, y)| x.matmul(y)).collect();
            assert!(lanes_eq(&out, &expect), "{m}x{k}x{n} lanes={lanes}");
        }
    }

    #[test]
    fn hermitian_and_column_match_scalar_per_lane() {
        let mut rng = SimRng::seed_from(3);
        let mats = random_mats(&mut rng, 3, 4, 6);
        let b = gather(&mats);
        let mut out = CBatch::new();
        b.hermitian_into(&mut out);
        let expect: Vec<CMat> = mats.iter().map(|m| m.hermitian()).collect();
        assert!(lanes_eq(&out, &expect));
        b.column_into(2, &mut out);
        let expect: Vec<CMat> = mats.iter().map(|m| m.column(2)).collect();
        assert!(lanes_eq(&out, &expect));
    }

    #[test]
    fn masked_add_skips_lanes_exactly() {
        let mut rng = SimRng::seed_from(4);
        let a = random_mats(&mut rng, 2, 2, 4);
        let d = random_mats(&mut rng, 2, 2, 4);
        let mut b = gather(&a);
        let mask = [true, false, true, false];
        b.add_in_place_masked(&gather(&d), &mask);
        let expect: Vec<CMat> = a
            .iter()
            .zip(&d)
            .zip(mask)
            .map(|((x, y), on)| if on { x + y } else { x.clone() })
            .collect();
        assert!(lanes_eq(&b, &expect));
    }

    #[test]
    fn svd_batch_matches_scalar_per_lane() {
        let mut rng = SimRng::seed_from(5);
        let mut scratch = SvdBatchScratch::new();
        let mut out = SvdBatch::default();
        let mut s_scratch = SvdScratch::new();
        let mut s_out = Svd::default();
        for &(m, n, lanes) in &[(2, 4, 52), (4, 2, 3), (3, 3, 8), (1, 1, 2)] {
            let mats = random_mats(&mut rng, m, n, lanes);
            svd_batch_into(&gather(&mats), &mut scratch, &mut out);
            for (l, a) in mats.iter().enumerate() {
                svd_into(a, &mut s_scratch, &mut s_out);
                for j in 0..n {
                    assert_eq!(
                        out.s_at(j, l).to_bits(),
                        s_out.s[j].to_bits(),
                        "s[{j}] lane {l} {m}x{n}"
                    );
                }
                let mut lane = CMat::zeros(0, 0);
                out.u.store_lane(l, &mut lane);
                assert_eq!(&lane, &s_out.u, "U lane {l} {m}x{n}");
                out.v.store_lane(l, &mut lane);
                assert_eq!(&lane, &s_out.v, "V lane {l} {m}x{n}");
            }
        }
    }

    #[test]
    fn inverse_loaded_batch_matches_scalar_per_lane() {
        let mut rng = SimRng::seed_from(6);
        let mut scratch = LuBatchScratch::new();
        let mut out = CBatch::new();
        let mut s_scratch = LuScratch::new();
        let mut s_out = CMat::zeros(0, 0);
        for &(n, lanes) in &[(2, 52), (3, 5), (4, 4), (1, 1)] {
            let mats = random_mats(&mut rng, n, n, lanes);
            inverse_loaded_batch_into(&gather(&mats), 1e-9, &mut scratch, &mut out);
            for (l, a) in mats.iter().enumerate() {
                inverse_loaded_into(a, 1e-9, &mut s_scratch, &mut s_out);
                let mut lane = CMat::zeros(0, 0);
                out.store_lane(l, &mut lane);
                assert_eq!(&lane, &s_out, "inverse lane {l} n={n}");
            }
        }
    }

    #[test]
    fn solve_batch_matches_scalar_per_lane() {
        let mut rng = SimRng::seed_from(7);
        let mut scratch = LuBatchScratch::new();
        let mut out = CBatch::new();
        for &(n, cols, lanes) in &[(2, 1, 9), (3, 2, 4), (4, 4, 2)] {
            let a = random_mats(&mut rng, n, n, lanes);
            let b = random_mats(&mut rng, n, cols, lanes);
            solve_batch_into(&gather(&a), &gather(&b), &mut scratch, &mut out)
                .expect("random matrices factor");
            for l in 0..lanes {
                let lu = crate::solve::Lu::factor(&a[l]).expect("factors");
                let mut x = CMat::zeros(0, 0);
                lu.solve_into(&b[l], &mut x);
                let mut lane = CMat::zeros(0, 0);
                out.store_lane(l, &mut lane);
                assert_eq!(&lane, &x, "solve lane {l} n={n}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stateless_across_shapes() {
        let mut rng = SimRng::seed_from(8);
        let mut scratch = SvdBatchScratch::new();
        let mut out = SvdBatch::default();
        // Big shape first, then small: stale state would corrupt lane 0.
        for &(m, n, lanes) in &[(4, 4, 52), (2, 2, 3), (4, 4, 52), (1, 3, 2)] {
            let mats = random_mats(&mut rng, m, n, lanes);
            svd_batch_into(&gather(&mats), &mut scratch, &mut out);
            let mut s_scratch = SvdScratch::new();
            let mut s_out = Svd::default();
            svd_into(&mats[0], &mut s_scratch, &mut s_out);
            let mut lane = CMat::zeros(0, 0);
            out.u.store_lane(0, &mut lane);
            assert_eq!(&lane, &s_out.u, "{m}x{n}x{lanes}");
        }
    }
}
