//! Deterministic in-repo property-based testing.
//!
//! The workspace builds with zero external dependencies, so instead of
//! `proptest` the property suites run on this mini-framework. It is driven
//! entirely by [`SimRng`](crate::SimRng): every case derives its seed from
//! the property name and case index, so runs are reproducible everywhere
//! and a failure message pins down the exact input.
//!
//! # Model
//!
//! A property is a closure `Fn(&mut Gen) -> Result<(), String>`. [`Gen`]
//! hands out random values (ints, floats, vectors, complex matrices); the
//! closure checks its invariant with the [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assert_ne!`] macros, which return an
//! `Err` describing the violation instead of panicking.
//!
//! [`check`] runs the property over N seeded cases. On failure it *shrinks*
//! by binary-searching the smallest `scale` in `(0, 1]` at which the same
//! seed still fails: `Gen` multiplies sizes and magnitudes by `scale`
//! (toward each range's origin), so a smaller failing scale means a simpler
//! counterexample. The panic message reports the property name, case,
//! seed and minimal scale; [`Gen::replay`] reconstructs the exact input
//! stream for debugging.
//!
//! ```
//! use copa_num::prop::check;
//! use copa_num::prop_assert;
//!
//! check("addition commutes", 64, |g| {
//!     let (a, b) = (g.f64_in(-1e3, 1e3), g.f64_in(-1e3, 1e3));
//!     prop_assert!((a + b - (b + a)).abs() < 1e-12, "{a} + {b}");
//!     Ok(())
//! });
//! ```

use crate::complex::C64;
use crate::matrix::CMat;
use crate::rng::SimRng;

/// The per-case random value source handed to properties.
///
/// All generators are deterministic functions of the seed and the call
/// sequence. The `scale` factor in `(0, 1]` shrinks ranges toward their
/// origin (0 when the range spans it, else the lower bound) -- `check`
/// lowers it while shrinking a failure.
pub struct Gen {
    rng: SimRng,
    scale: f64,
}

impl Gen {
    fn new(seed: u64, scale: f64) -> Self {
        Self {
            rng: SimRng::seed_from(seed),
            scale,
        }
    }

    /// Reconstructs the exact value stream of a reported failure, for
    /// debugging a property interactively.
    pub fn replay(seed: u64, scale: f64) -> Self {
        Self::new(seed, scale)
    }

    /// Raw 64-bit entropy (seeds, hashes). Not scaled during shrinking.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Raw 32-bit entropy.
    pub fn u32(&mut self) -> u32 {
        (self.rng.next_u64() >> 32) as u32
    }

    /// Raw 16-bit entropy.
    pub fn u16(&mut self) -> u16 {
        (self.rng.next_u64() >> 48) as u16
    }

    /// A uniform byte.
    pub fn u8(&mut self) -> u8 {
        (self.rng.next_u64() >> 56) as u8
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniform integer in `[lo, hi)`, shrinking toward `lo`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in: empty range [{lo}, {hi})");
        let raw = self.rng.below((hi - lo) as u64) as usize;
        lo + ((raw as f64) * self.scale).round() as usize
    }

    /// Uniform byte in `[lo, hi)`, shrinking toward `lo`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.usize_in(lo as usize, hi as usize) as u8
    }

    /// Uniform float in `[lo, hi)`, shrinking toward the range's origin
    /// (0 when `lo <= 0 < hi`, else `lo`).
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "f64_in: empty range [{lo}, {hi})");
        let raw = self.rng.uniform_range(lo, hi);
        let origin = if lo <= 0.0 && 0.0 < hi { 0.0 } else { lo };
        origin + (raw - origin) * self.scale
    }

    /// Vector of uniform floats with random length in `[min_len, max_len)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Vector of raw bytes with random length in `[min_len, max_len)`.
    pub fn vec_u8(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.u8()).collect()
    }

    /// Exactly `len` raw bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.u8()).collect()
    }

    /// A random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "pick from empty slice");
        &options[self.rng.below(options.len() as u64) as usize]
    }

    /// `Some(value)` half the time.
    pub fn option<T>(&mut self, mut value: impl FnMut(&mut Gen) -> T) -> Option<T> {
        if self.bool() {
            Some(value(self))
        } else {
            None
        }
    }

    /// Complex number with both parts uniform in `[lo, hi)`.
    pub fn complex_in(&mut self, lo: f64, hi: f64) -> C64 {
        C64::new(self.f64_in(lo, hi), self.f64_in(lo, hi))
    }

    /// `m x n` complex matrix with entries uniform in `[lo, hi)` per part.
    pub fn cmat_in(&mut self, m: usize, n: usize, lo: f64, hi: f64) -> CMat {
        CMat::from_fn(m, n, |_, _| self.complex_in(lo, hi))
    }
}

/// FNV-1a, so each property gets a stable, distinct seed stream from its
/// name alone (no global registration, no run-order sensitivity).
fn fnv64(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn case_seed(base: u64, case: usize) -> u64 {
    base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1
}

/// Runs `prop` over `cases` deterministic inputs; panics with a
/// reproducible report on the first failure.
///
/// Shrinking: with the failing case's seed fixed, binary-search the
/// smallest `scale` that still fails and report that minimal
/// counterexample's message.
///
/// # Panics
/// Panics (failing the test) if any case returns `Err`.
pub fn check<F>(name: &str, cases: usize, prop: F)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    let base = fnv64(name);
    for case in 0..cases {
        let seed = case_seed(base, case);
        let mut g = Gen::new(seed, 1.0);
        if let Err(msg) = prop(&mut g) {
            let (scale, msg) = shrink(seed, &prop, msg);
            // allowlisted: the property harness reports failure by
            // panicking, exactly like the test framework it stands in for.
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (seed {seed:#018x}, scale {scale:.4}):\n  {msg}\n  \
                 replay with copa_num::prop::Gen::replay({seed:#018x}, {scale:.4})"
            );
        }
    }
}

/// Binary-searches the smallest failing scale in `(0, 1]` for `seed`.
fn shrink<F>(seed: u64, prop: &F, full_msg: String) -> (f64, String)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    let (mut lo, mut hi, mut msg) = (0.0f64, 1.0f64, full_msg);
    for _ in 0..16 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        match prop(&mut Gen::new(seed, mid)) {
            Err(m) => {
                hi = mid;
                msg = m;
            }
            Ok(()) => lo = mid,
        }
    }
    (hi, msg)
}

/// Asserts a condition inside a property, returning `Err` (not panicking)
/// so the runner can shrink and report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("{} ({}:{})", format!($($fmt)+), file!(), line!()));
        }
    };
}

/// Asserts two values are equal inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{}\n    left: {:?}\n   right: {:?} ({}:{})",
                format!($($fmt)+),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts two values differ inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: {} != {}\n    both: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "{}\n    both: {:?} ({}:{})",
                format!($($fmt)+),
                a,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0usize;
        let counter = std::cell::Cell::new(0usize);
        check("always true", 10, |g| {
            let _ = g.u64();
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = Gen::replay(42, 1.0);
        let mut b = Gen::replay(42, 1.0);
        for _ in 0..50 {
            assert_eq!(a.u64(), b.u64());
        }
        let mut a = Gen::replay(42, 1.0);
        let mut b = Gen::replay(42, 1.0);
        assert_eq!(a.vec_f64(-5.0, 5.0, 1, 20), b.vec_f64(-5.0, 5.0, 1, 20));
    }

    #[test]
    fn ranges_respected_at_all_scales() {
        for &scale in &[1.0, 0.5, 0.01] {
            let mut g = Gen::replay(7, scale);
            for _ in 0..200 {
                let v = g.f64_in(-3.0, 7.0);
                assert!((-3.0..7.0).contains(&v), "{v} at scale {scale}");
                let u = g.usize_in(2, 9);
                assert!((2..9).contains(&u), "{u} at scale {scale}");
                let x = g.f64_in(5.0, 6.0);
                assert!((5.0..6.0).contains(&x), "{x} at scale {scale}");
            }
        }
    }

    #[test]
    fn scale_shrinks_toward_origin() {
        let mut full = Gen::replay(11, 1.0);
        let mut tiny = Gen::replay(11, 1e-3);
        for _ in 0..100 {
            let a = full.f64_in(-100.0, 100.0);
            let b = tiny.f64_in(-100.0, 100.0);
            assert!(b.abs() <= a.abs() + 1e-12);
            assert!(b.abs() < 0.2, "shrunk value should be near origin: {b}");
        }
        let mut tiny = Gen::replay(13, 1e-6);
        for _ in 0..100 {
            assert_eq!(tiny.usize_in(3, 40), 3, "lengths shrink to minimum");
        }
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check("big vectors fail", 20, |g| {
                let v = g.vec_f64(0.0, 1.0, 0, 50);
                prop_assert!(v.len() < 10, "len {}", v.len());
                Ok(())
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("big vectors fail"), "{msg}");
        assert!(msg.contains("seed 0x"), "{msg}");
        assert!(msg.contains("replay with"), "{msg}");
        // The shrunk counterexample is minimal: length exactly 10.
        assert!(
            msg.contains("len 10"),
            "shrink should reach the boundary: {msg}"
        );
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        assert_ne!(fnv64("a"), fnv64("b"));
        assert_ne!(case_seed(fnv64("a"), 0), case_seed(fnv64("a"), 1));
    }

    #[test]
    fn cmat_has_requested_shape() {
        let mut g = Gen::replay(3, 1.0);
        let m = g.cmat_in(3, 4, -1e3, 1e3);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert!(m.as_slice().iter().all(|z| z.is_finite()));
    }
}
