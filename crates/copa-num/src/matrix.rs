//! Dense complex matrices sized for MIMO processing.
//!
//! Channel matrices in this workspace are small (at most 4x4: antennas per
//! node), but there are many of them (one per OFDM subcarrier per link), so
//! the type is a simple row-major `Vec<C64>` with straightforward loops --
//! no blocking or SIMD tricks, just correct and predictable code.

use crate::complex::{C64, ONE, ZERO};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// `Default` is the empty `0 x 0` matrix -- the natural starting state for
/// scratch-workspace buffers that grow on first use.
#[derive(Clone, Default, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates an all-zero `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[C64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a column vector (`n x 1`) from a slice.
    pub fn col_vector(v: &[C64]) -> Self {
        Self::from_rows(v.len(), 1, v)
    }

    /// Builds a diagonal matrix from real diagonal entries.
    pub fn diag_real(d: &[f64]) -> Self {
        let mut m = Self::zeros(d.len(), d.len());
        for (i, &x) in d.iter().enumerate() {
            m[(i, i)] = C64::real(x);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major entries.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Raw row-major entries, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Reshapes this matrix in place to an all-zero `rows x cols`, reusing
    /// the existing buffer. After the first few calls at the largest shape
    /// in play, this never allocates -- the backbone of the scratch
    /// workspaces used by the per-subcarrier kernels.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, ZERO);
    }

    /// Makes `self` a copy of `src` (shape and entries), reusing the buffer.
    pub fn copy_from(&mut self, src: &CMat) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Conjugate (Hermitian) transpose `A^H`.
    pub fn hermitian(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Writes `self^H` into `out` without allocating (same entry order as
    /// [`CMat::hermitian`], so results are bit-identical).
    pub fn hermitian_into(&self, out: &mut CMat) {
        out.reset(self.cols, self.rows);
        for i in 0..out.rows {
            for j in 0..out.cols {
                out[(i, j)] = self[(j, i)].conj();
            }
        }
    }

    /// Plain transpose `A^T` (no conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entrywise complex conjugate.
    pub fn conj(&self) -> CMat {
        CMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)].conj())
    }

    /// Multiplies every entry by a real scalar.
    pub fn scale(&self, s: f64) -> CMat {
        CMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)].scale(s))
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale_c(&self, s: C64) -> CMat {
        CMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] * s)
    }

    /// Extracts column `j` as a `rows x 1` matrix.
    pub fn column(&self, j: usize) -> CMat {
        assert!(j < self.cols);
        CMat::from_fn(self.rows, 1, |i, _| self[(i, j)])
    }

    /// Writes column `j` into `out` as a `rows x 1` matrix without
    /// allocating. Bit-identical to [`CMat::column`].
    pub fn column_into(&self, j: usize, out: &mut CMat) {
        assert!(j < self.cols);
        out.reset(self.rows, 1);
        for i in 0..self.rows {
            out[(i, 0)] = self[(i, j)];
        }
    }

    /// Extracts row `i` as a `1 x cols` matrix.
    pub fn row(&self, i: usize) -> CMat {
        assert!(i < self.rows);
        CMat::from_fn(1, self.cols, |_, j| self[(i, j)])
    }

    /// Returns the sub-matrix made of the given columns, in order.
    pub fn select_columns(&self, cols: &[usize]) -> CMat {
        CMat::from_fn(self.rows, cols.len(), |i, j| self[(i, cols[j])])
    }

    /// Writes the sub-matrix made of the given columns into `out` without
    /// allocating. Bit-identical to [`CMat::select_columns`].
    pub fn select_columns_into(&self, cols: &[usize], out: &mut CMat) {
        out.reset(self.rows, cols.len());
        for i in 0..self.rows {
            for j in 0..cols.len() {
                out[(i, j)] = self[(i, cols[j])];
            }
        }
    }

    /// Returns the sub-matrix made of the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> CMat {
        CMat::from_fn(rows.len(), self.cols, |i, j| self[(rows[i], j)])
    }

    /// Stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &CMat) -> CMat {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        CMat::from_fn(self.rows + other.rows, self.cols, |i, j| {
            if i < self.rows {
                self[(i, j)]
            } else {
                other[(i - self.rows, j)]
            }
        })
    }

    /// Places `self` left of `other` (row counts must match).
    pub fn hstack(&self, other: &CMat) -> CMat {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        CMat::from_fn(self.rows, self.cols + other.cols, |i, j| {
            if j < self.cols {
                self[(i, j)]
            } else {
                other[(i, j - self.cols)]
            }
        })
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm (total power of the matrix entries).
    pub fn frobenius_norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Writes `self * rhs` into `out` without allocating. The loop order and
    /// the zero-entry skip match [`CMat::matmul`] exactly, so the result is
    /// bit-identical to the allocating version.
    pub fn mul_into(&self, rhs: &CMat, out: &mut CMat) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        out.reset(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
    }

    /// Entrywise `self += rhs`. Bit-identical to `&self + &rhs` (the same
    /// `a + b` per entry), but without allocating the sum.
    pub fn add_in_place(&mut self, rhs: &CMat) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a = *a + *b;
        }
    }

    /// `A^H * A` (Gram matrix), used throughout the precoding code.
    pub fn gram(&self) -> CMat {
        self.hermitian().matmul(self)
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `true` when `|self - other|_max < tol`.
    pub fn approx_eq(&self, other: &CMat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (*a - *b).abs() < tol)
    }

    /// `true` when `A^H A = I` within `tol` (orthonormal columns).
    pub fn has_orthonormal_columns(&self, tol: f64) -> bool {
        self.gram().approx_eq(&CMat::identity(self.cols), tol)
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + rhs[(i, j)])
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - rhs[(i, j)])
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.matmul(rhs)
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?}  ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::I;

    fn m2(a: f64, b: f64, c: f64, d: f64) -> CMat {
        CMat::from_rows(
            2,
            2,
            &[C64::real(a), C64::real(b), C64::real(c), C64::real(d)],
        )
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let i = CMat::identity(2);
        assert!(a.matmul(&i).approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_known_product() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b);
        assert!(c.approx_eq(&m2(19.0, 22.0, 43.0, 50.0), 1e-12));
    }

    #[test]
    fn hermitian_conjugates() {
        let a = CMat::from_rows(1, 2, &[I, C64::new(1.0, 2.0)]);
        let h = a.hermitian();
        assert_eq!(h.rows(), 2);
        assert_eq!(h[(0, 0)], -I);
        assert_eq!(h[(1, 0)], C64::new(1.0, -2.0));
        assert!(h.hermitian().approx_eq(&a, 1e-15));
    }

    #[test]
    fn hermitian_of_product_reverses() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = CMat::from_rows(2, 2, &[I, C64::real(1.0), C64::new(2.0, -1.0), I]);
        let lhs = a.matmul(&b).hermitian();
        let rhs = b.hermitian().matmul(&a.hermitian());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn stack_and_select() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let v = a.vstack(&a);
        assert_eq!(v.rows(), 4);
        assert_eq!(v[(2, 0)], C64::real(1.0));
        let h = a.hstack(&a);
        assert_eq!(h.cols(), 4);
        assert_eq!(h[(0, 2)], C64::real(1.0));
        let c = a.select_columns(&[1]);
        assert_eq!((c.rows(), c.cols()), (2, 1));
        assert_eq!(c[(1, 0)], C64::real(4.0));
        let r = a.select_rows(&[1]);
        assert_eq!(r[(0, 0)], C64::real(3.0));
    }

    #[test]
    fn frobenius_and_trace() {
        let a = m2(3.0, 0.0, 0.0, 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.trace(), C64::real(7.0));
    }

    #[test]
    fn gram_is_hermitian_psd_diagonal() {
        let a = CMat::from_rows(2, 2, &[I, C64::real(2.0), C64::new(1.0, 1.0), -I]);
        let g = a.gram();
        assert!(g.approx_eq(&g.hermitian(), 1e-12));
        for i in 0..2 {
            assert!(g[(i, i)].re >= 0.0);
            assert!(g[(i, i)].im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
