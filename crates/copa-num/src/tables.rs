//! Precomputed lookup tables for the rate-lookup tail.
//!
//! Two costs dominate the allocator's rate selection once the linear
//! algebra is batched: `erfc` evaluations inside the per-MCS BER formulas,
//! and (for COPA+) rebuilding Gauss–Hermite rules. This module precomputes
//! both:
//!
//! * [`ErfcTable`] tabulates [`crate::special::erfc`] on a uniform grid and
//!   interpolates linearly. Table nodes store the *exact* `special::erfc`
//!   output (0 ulp of error at the nodes by construction), and because
//!   `erfc` is monotone decreasing and linear interpolation of monotone
//!   node values is monotone, the table is monotone between nodes too —
//!   both properties are locked down in `tests/prop_batch.rs`.
//! * [`gauss_hermite_cached`] memoizes [`crate::quadrature::GaussHermite`]
//!   rules per order in a process-wide cache, constructed by the *same*
//!   Newton iteration code, so cached nodes/weights are bit-identical to a
//!   fresh `GaussHermite::new(n)`.
//!
//! The engine's golden-figure path keeps calling exact `special::erfc`;
//! the table is the opt-in fast variant for throughput-oriented callers
//! (benchmarks, sweeps) that can tolerate interpolation error between
//! nodes.

use crate::quadrature::GaussHermite;
use crate::special::erfc;
use std::sync::{Mutex, OnceLock};

/// Uniform-grid lookup table for `erfc` with linear interpolation.
#[derive(Clone, Debug)]
pub struct ErfcTable {
    x0: f64,
    x1: f64,
    inv_step: f64,
    values: Vec<f64>,
}

impl ErfcTable {
    /// Default range: `erfc` is within one f64 ulp of 2.0 below -6 and
    /// within one ulp of 0 (for BER purposes) above 6.
    pub const DEFAULT_RANGE: (f64, f64) = (-6.0, 6.0);
    /// Default node count (16385 nodes over 12 units keeps the linear
    /// interpolation error of this smooth function below ~7e-8 absolute,
    /// comparable to the rational approximation's own 1.2e-7 error).
    pub const DEFAULT_NODES: usize = 16385;

    /// Builds a table with `nodes` uniformly spaced nodes on `[x0, x1]`.
    ///
    /// # Panics
    /// Requires `nodes >= 2` and `x0 < x1`.
    pub fn new(x0: f64, x1: f64, nodes: usize) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        assert!(x0 < x1, "range must be non-empty");
        let step = (x1 - x0) / (nodes - 1) as f64;
        let values = (0..nodes).map(|i| erfc(x0 + i as f64 * step)).collect();
        Self {
            x0,
            x1,
            inv_step: 1.0 / step,
            values,
        }
    }

    /// The default table (see [`Self::DEFAULT_RANGE`]).
    pub fn default_table() -> Self {
        Self::new(
            Self::DEFAULT_RANGE.0,
            Self::DEFAULT_RANGE.1,
            Self::DEFAULT_NODES,
        )
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.values.len()
    }

    /// The `i`-th node abscissa.
    pub fn node_x(&self, i: usize) -> f64 {
        self.x0 + i as f64 / self.inv_step
    }

    /// The stored value at node `i` (exactly `special::erfc(node_x(i))`).
    pub fn node_value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Interpolated `erfc(x)`. Outside the tabulated range the exact
    /// function is used (the tails are flat to near machine precision, but
    /// falling back keeps the approximation honest everywhere).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        if !(self.x0..=self.x1).contains(&x) {
            return erfc(x);
        }
        let t = (x - self.x0) * self.inv_step;
        let i = (t as usize).min(self.values.len() - 2);
        let frac = t - i as f64;
        let a = self.values[i];
        let b = self.values[i + 1];
        a + (b - a) * frac
    }
}

/// Process-wide cache of Gauss–Hermite rules keyed by order.
///
/// The rules are built by [`GaussHermite::new`] itself, so a cached rule is
/// bit-identical to a freshly constructed one; the cache only saves the
/// Newton iterations (~10 µs per order) on repeated lookups, e.g. when the
/// mercury/waterfilling allocator builds MMSE curves per worker thread.
pub fn gauss_hermite_cached(n: usize) -> GaussHermite {
    static CACHE: OnceLock<Mutex<Vec<(usize, GaussHermite)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().expect("gauss-hermite cache lock poisoned");
    if let Some((_, gh)) = guard.iter().find(|(k, _)| *k == n) {
        return gh.clone();
    }
    let gh = GaussHermite::new(n);
    guard.push((n, gh.clone()));
    gh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_exact() {
        let t = ErfcTable::new(-4.0, 4.0, 257);
        for i in 0..t.nodes() {
            let x = t.node_x(i);
            assert_eq!(t.eval(x).to_bits(), erfc(x).to_bits(), "node {i} (x={x})");
        }
    }

    #[test]
    fn interpolation_error_is_small() {
        let t = ErfcTable::default_table();
        for k in 0..4000 {
            let x = -6.0 + 12.0 * (k as f64 + 0.31) / 4000.0;
            let err = (t.eval(x) - erfc(x)).abs();
            assert!(err < 1e-7, "x={x}: err={err:e}");
        }
    }

    #[test]
    fn out_of_range_falls_back_to_exact() {
        let t = ErfcTable::default_table();
        for &x in &[-9.0, 7.5, 100.0, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(t.eval(x).to_bits(), erfc(x).to_bits());
        }
    }

    #[test]
    fn monotone_decreasing_everywhere() {
        let t = ErfcTable::new(-5.0, 5.0, 101);
        let mut prev = t.eval(-5.0);
        for k in 1..=5000 {
            let x = -5.0 + 10.0 * k as f64 / 5000.0;
            let v = t.eval(x);
            assert!(v <= prev, "x={x}: {v} > {prev}");
            prev = v;
        }
    }

    #[test]
    fn gauss_hermite_cache_is_bit_identical_to_fresh() {
        for &n in &[8usize, 16, 40] {
            let cached = gauss_hermite_cached(n);
            let again = gauss_hermite_cached(n);
            let fresh = GaussHermite::new(n);
            for i in 0..n {
                assert_eq!(cached.nodes[i].to_bits(), fresh.nodes[i].to_bits());
                assert_eq!(cached.weights[i].to_bits(), fresh.weights[i].to_bits());
                assert_eq!(again.nodes[i].to_bits(), fresh.nodes[i].to_bits());
            }
        }
    }
}
