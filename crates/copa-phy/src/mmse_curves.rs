//! Constellation-constrained MMSE curves for mercury/waterfilling.
//!
//! Lozano, Tulino & Verdu's mercury/waterfilling (cited by the paper as the
//! optimal power allocation for discrete constellations) needs the function
//! `mmse_M(snr)`: the minimum mean-square error of estimating a unit-energy
//! constellation symbol from an AWGN observation at a given SNR. For square
//! QAM this reduces to the per-axis PAM MMSE at the same SNR, which we
//! evaluate by Gauss-Hermite quadrature and cache on a log-SNR grid.

use crate::modulation::Modulation;
use copa_num::quadrature::GaussHermite;

/// Number of Gauss-Hermite nodes for the conditional-mean integrals.
const GH_ORDER: usize = 48;
/// Log-spaced SNR grid for the cached curve.
const GRID_POINTS: usize = 240;
const SNR_MIN: f64 = 1e-4;
const SNR_MAX: f64 = 1e7;

/// A cached, monotone-interpolated `mmse(snr)` curve for one constellation.
#[derive(Clone, Debug)]
pub struct MmseCurve {
    modulation: Modulation,
    log_snr: Vec<f64>,
    mmse: Vec<f64>,
}

impl MmseCurve {
    /// Builds the curve for `modulation` (a few ms of quadrature, done once).
    pub fn new(modulation: Modulation) -> Self {
        let gh = GaussHermite::new(GH_ORDER);
        let levels = unit_energy_pam(&modulation);
        let mut log_snr = Vec::with_capacity(GRID_POINTS);
        let mut mmse = Vec::with_capacity(GRID_POINTS);
        let l0 = SNR_MIN.ln();
        let l1 = SNR_MAX.ln();
        for i in 0..GRID_POINTS {
            let ls = l0 + (l1 - l0) * i as f64 / (GRID_POINTS - 1) as f64;
            log_snr.push(ls);
            mmse.push(pam_mmse(&gh, &levels, ls.exp()));
        }
        // Enforce strict monotonicity against quadrature jitter.
        for i in 1..mmse.len() {
            if mmse[i] >= mmse[i - 1] {
                mmse[i] = mmse[i - 1] * (1.0 - 1e-12);
            }
        }
        Self {
            modulation,
            log_snr,
            mmse,
        }
    }

    /// The constellation this curve describes.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// `mmse(snr)`: 1 at snr -> 0, decreasing to 0 as snr -> inf.
    pub fn mmse(&self, snr: f64) -> f64 {
        if snr <= SNR_MIN {
            // Near zero SNR the MMSE of a unit-energy constellation tends to
            // 1 - snr * ... ; just clamp to the grid edge.
            return self.mmse[0].max(1.0 - snr).min(1.0);
        }
        if snr >= SNR_MAX {
            return 0.0;
        }
        let ls = snr.ln();
        let i = self
            .log_snr
            .partition_point(|&x| x <= ls)
            .clamp(1, GRID_POINTS - 1);
        let (x0, x1) = (self.log_snr[i - 1], self.log_snr[i]);
        let t = (ls - x0) / (x1 - x0);
        self.mmse[i - 1] * (1.0 - t) + self.mmse[i] * t
    }

    /// Inverse function: the SNR at which `mmse(snr) == target`.
    /// Returns 0 for `target >= 1` and `SNR_MAX` for unattainably small
    /// targets.
    ///
    /// The cached grid is strictly decreasing, so the inverse is a direct
    /// binary search plus linear interpolation in log-SNR -- this sits in
    /// the innermost loop of mercury/waterfilling, so it must be cheap.
    pub fn mmse_inverse(&self, target: f64) -> f64 {
        if target >= self.mmse(0.0) {
            return 0.0;
        }
        let last = *self.mmse.last().expect("non-empty grid");
        if target <= last {
            return SNR_MAX;
        }
        // mmse is descending: find the first index with mmse < target.
        let i = self
            .mmse
            .partition_point(|&m| m >= target)
            .clamp(1, GRID_POINTS - 1);
        let (m0, m1) = (self.mmse[i - 1], self.mmse[i]);
        let t = if m0 > m1 {
            (m0 - target) / (m0 - m1)
        } else {
            0.0
        };
        let ls = self.log_snr[i - 1] * (1.0 - t) + self.log_snr[i] * t;
        ls.exp()
    }
}

/// Unit-energy PAM levels whose MMSE equals the constellation's complex
/// MMSE at the same SNR (square QAM factorizes into two half-energy PAMs).
fn unit_energy_pam(modulation: &Modulation) -> Vec<f64> {
    match modulation {
        Modulation::Bpsk => vec![-1.0, 1.0],
        _ => {
            // Rescale the half-energy per-axis levels to unit energy.
            let lv = modulation.pam_levels();
            let e: f64 = lv.iter().map(|x| x * x).sum::<f64>() / lv.len() as f64;
            let s = 1.0 / e.sqrt();
            lv.iter().map(|x| x * s).collect()
        }
    }
}

/// MMSE of a unit-energy real PAM at SNR `s`: `Y = sqrt(s) X + N(0,1)`.
fn pam_mmse(gh: &GaussHermite, levels: &[f64], s: f64) -> f64 {
    let m = levels.len() as f64;
    let rs = s.sqrt();
    // E[xhat^2], averaging over transmitted level and noise.
    let mut e_xhat2 = 0.0;
    for &x in levels {
        e_xhat2 += gh.gaussian_expectation(|n| {
            let y = rs * x + n;
            // Conditional mean E[X | Y = y].
            let mut num = 0.0;
            let mut den = 0.0;
            for &xi in levels {
                let d = y - rs * xi;
                let w = (-0.5 * d * d).exp();
                num += xi * w;
                den += w;
            }
            let xhat = if den > 0.0 { num / den } else { 0.0 };
            xhat * xhat
        }) / m;
    }
    (1.0 - e_xhat2).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmse_limits() {
        for m in Modulation::ALL {
            let c = MmseCurve::new(m);
            assert!(c.mmse(1e-6) > 0.99, "{m} mmse(0) should be ~1");
            assert!(c.mmse(1e6) < 1e-3, "{m} mmse(inf) should be ~0");
        }
    }

    #[test]
    fn mmse_strictly_decreasing() {
        let c = MmseCurve::new(Modulation::Qam16);
        let mut prev = 2.0;
        for i in 0..100 {
            let snr = 10f64.powf(-3.0 + i as f64 * 0.08);
            let v = c.mmse(snr);
            assert!(v <= prev, "increased at snr {snr}");
            // Strict decrease required while the curve is numerically alive.
            if prev > 1e-9 && prev < 1.0 {
                assert!(v < prev, "not strictly decreasing at snr {snr}");
            }
            prev = v;
        }
    }

    #[test]
    fn bpsk_mmse_matches_closed_form_small_snr() {
        // For any unit-energy input, mmse(snr) ~ 1 - snr as snr -> 0
        // (linear estimation regime).
        let c = MmseCurve::new(Modulation::Bpsk);
        let snr = 0.01;
        assert!((c.mmse(snr) - (1.0 - snr)).abs() < 2e-3);
    }

    #[test]
    fn bpsk_mmse_matches_gsv_identity() {
        // Guo-Shamai-Verdu closed form for BPSK:
        // mmse(snr) = 1 - E[tanh(snr + sqrt(snr) Z)], Z ~ N(0,1).
        let c = MmseCurve::new(Modulation::Bpsk);
        let gh = GaussHermite::new(64);
        for &snr in &[0.25f64, 1.0, 4.0, 10.0] {
            let reference = 1.0 - gh.gaussian_expectation(|z| (snr + snr.sqrt() * z).tanh());
            let v = c.mmse(snr);
            assert!(
                (v - reference).abs() < 2e-3,
                "mmse_BPSK({snr}) = {v}, GSV reference {reference}"
            );
        }
    }

    #[test]
    fn denser_constellations_have_larger_mmse_at_high_snr() {
        // At 10 dB BPSK is essentially resolved while 64-QAM is not.
        let snr = 10.0;
        let vals: Vec<f64> = Modulation::ALL
            .iter()
            .map(|&m| MmseCurve::new(m).mmse(snr))
            .collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "ordering at 10 dB: {vals:?}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let c = MmseCurve::new(Modulation::Qam64);
        for &target in &[0.9, 0.5, 0.1, 0.01] {
            let snr = c.mmse_inverse(target);
            let back = c.mmse(snr);
            assert!(
                (back - target).abs() < 1e-6,
                "inverse({target}) -> {snr} -> {back}"
            );
        }
        assert_eq!(c.mmse_inverse(1.5), 0.0);
    }
}
