//! # copa-phy
//!
//! 802.11n OFDM physical-layer model for the COPA reproduction:
//!
//! * [`ofdm`] -- 20 MHz channelization constants (52 data subcarriers, 4 us
//!   symbols, coherence-time helpers).
//! * [`modulation`] -- BPSK/QPSK/16-QAM/64-QAM constellations and uncoded
//!   AWGN BER.
//! * [`coding`] -- the K=7 (133,171) convolutional code: encoder, punctured
//!   rates 1/2..5/6, hard-decision Viterbi, and the union-bound coded-BER
//!   model the throughput predictor uses.
//! * [`mcs`] -- the 8 single-stream MCSes (6.5..65 Mbps).
//! * [`link`] -- SINR -> BER -> FER -> goodput prediction, exactly the
//!   paper's section 4.1 methodology, plus the section 4.6 multi-decoder
//!   extension.
//! * [`mmse_curves`] -- constellation MMSE curves for mercury/waterfilling.
//! * [`scrambler`] / [`interleaver`] / [`mapper`] / [`baseband`] -- the
//!   bit-true 802.11 pipeline (scramble, interleave, Gray-map, OFDM
//!   modulate), used to validate the analytic models by Monte-Carlo.
//! * [`soft`] -- max-log LLR demapping and soft-decision Viterbi.
//! * [`mimo_chain`] -- the multi-stream (spatial multiplexing) variant with
//!   802.11n stream parsing and zero-forcing separation.
//! * [`papr`] -- peak-to-average power ratio measurements (section 4.1).
//! * [`waveform`] -- the time-domain sample stream: IFFT/CP framing,
//!   preamble sync, CFO/SFO impairments; validates what the analytic chain
//!   assumes away.

#![warn(missing_docs)]

pub mod baseband;
pub mod coding;
pub mod interleaver;
pub mod link;
pub mod mapper;
pub mod mcs;
pub mod mimo_chain;
pub mod mmse_curves;
pub mod modulation;
pub mod ofdm;
pub mod papr;
pub mod scrambler;
pub mod soft;
pub mod waveform;

pub use coding::CodeRate;
pub use link::{RateChoice, ThroughputModel};
pub use mcs::Mcs;
pub use modulation::Modulation;
