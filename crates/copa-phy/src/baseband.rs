//! Symbol-level OFDM baseband: the full 802.11 bit pipeline.
//!
//! `scramble -> convolutional encode (punctured) -> interleave per OFDM
//! symbol -> Gray-map -> subcarriers` and the exact reverse. The analytic
//! BER/throughput models in [`crate::link`] are validated against this
//! bit-true chain by Monte-Carlo tests in `copa-sim`.
//!
//! A time-domain OFDM modulator (64-point IFFT + 16-sample cyclic prefix at
//! 20 MHz) is included for completeness; over a CP-contained multipath
//! channel it is equivalent to per-subcarrier complex multiplication, which
//! is what the link simulations use.

use crate::coding::{
    coded_len, encode, encode_append, viterbi_decode, viterbi_decode_into, ViterbiScratch,
    CONSTRAINT_LENGTH,
};
use crate::interleaver::Interleaver;
use crate::mapper::Mapper;
use crate::mcs::Mcs;
use crate::ofdm::{data_subcarrier_bins, DATA_SUBCARRIERS, FFT_SIZE};
use crate::scrambler::Scrambler;
use copa_num::complex::{C64, ZERO};
use copa_num::fft::{fft, ifft};

/// Cyclic prefix length in samples (800 ns at 20 MHz).
pub const CP_SAMPLES: usize = 16;

/// One modulated frame: per OFDM symbol, the 52 data-subcarrier symbols.
#[derive(Clone, Debug)]
pub struct TxFrame {
    /// `symbols[t][s]`: complex symbol on data subcarrier `s` of OFDM
    /// symbol `t`. Unit average energy per subcarrier.
    pub symbols: Vec<Vec<C64>>,
    /// Number of payload bits carried (before padding).
    pub payload_bits: usize,
}

/// A frame of per-subcarrier symbols in one flat buffer
/// (`data[t * DATA_SUBCARRIERS + s]`), reusable across frames without
/// reallocation -- the waveform Monte-Carlo path uses this instead of the
/// nested [`TxFrame`] layout.
#[derive(Clone, Debug, Default)]
pub struct FlatSymbols {
    data: Vec<C64>,
    n_symbols: usize,
    payload_bits: usize,
}

impl FlatSymbols {
    /// An empty buffer; grows on first use and is then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of OFDM symbols held.
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// Payload bits carried (before padding).
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// The 52 data-subcarrier symbols of OFDM symbol `t`.
    pub fn symbol(&self, t: usize) -> &[C64] {
        &self.data[t * DATA_SUBCARRIERS..(t + 1) * DATA_SUBCARRIERS]
    }

    /// All symbols, flat.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }
}

/// Reusable working buffers for [`Chain::transmit_into`] /
/// [`Chain::receive_into`]: one scratch serves any MCS, growing to the
/// largest frame seen and allocation-free thereafter.
#[derive(Clone, Debug, Default)]
pub struct ChainScratch {
    bits: Vec<u8>,
    coded: Vec<u8>,
    inter: Vec<u8>,
    hard: Vec<u8>,
    viterbi: ViterbiScratch,
}

impl ChainScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The 802.11 transmit/receive bit pipeline for one MCS.
#[derive(Clone, Debug)]
pub struct Chain {
    mcs: Mcs,
    mapper: Mapper,
    interleaver: Interleaver,
    scrambler_seed: u8,
}

impl Chain {
    /// Builds the pipeline for an MCS (scrambler seed fixed for
    /// reproducibility; any nonzero value works).
    pub fn new(mcs: Mcs) -> Self {
        Self {
            mcs,
            mapper: Mapper::new(mcs.modulation),
            interleaver: Interleaver::new(mcs.modulation),
            scrambler_seed: 0x5D,
        }
    }

    /// The MCS this chain implements.
    pub fn mcs(&self) -> Mcs {
        self.mcs
    }

    /// Encodes payload bits into per-subcarrier symbols.
    pub fn transmit(&self, payload: &[u8]) -> TxFrame {
        // Scramble.
        let mut bits = payload.to_vec();
        Scrambler::new(self.scrambler_seed).process(&mut bits);
        // Convolutional encode (adds tail, applies puncturing).
        let mut coded = encode(&bits, self.mcs.rate);
        // Pad to a whole number of OFDM symbols.
        let block = self.interleaver.block_len();
        let pad = (block - coded.len() % block) % block;
        coded.extend(std::iter::repeat_n(0u8, pad));
        // Interleave + map per OFDM symbol.
        let symbols = coded
            .chunks(block)
            .map(|chunk| self.mapper.map(&self.interleaver.interleave(chunk)))
            .collect();
        TxFrame {
            symbols,
            payload_bits: payload.len(),
        }
    }

    /// Decodes received per-subcarrier symbols (after equalization) back to
    /// payload bits. `payload_bits` must match the transmitted frame.
    pub fn receive(&self, received: &[Vec<C64>], payload_bits: usize) -> Vec<u8> {
        let mut coded = Vec::new();
        for sym in received {
            assert_eq!(sym.len(), DATA_SUBCARRIERS, "need all data subcarriers");
            let hard = self.mapper.demap(sym);
            coded.extend(self.interleaver.deinterleave(&hard));
        }
        // Trim the padding: reconstruct the exact punctured length.
        let coded_len = encode(&vec![0u8; payload_bits], self.mcs.rate).len();
        coded.truncate(coded_len);
        let mut bits = viterbi_decode(&coded, payload_bits, self.mcs.rate);
        Scrambler::new(self.scrambler_seed).process(&mut bits);
        bits
    }

    // alloc-free: begin chain_into (kernel -- caller-owned scratch)
    /// [`transmit`] writing into caller-owned buffers: bit-identical symbols
    /// (same scramble/encode/pad/interleave/map sequence), no allocation
    /// once the scratch has grown to the frame size.
    ///
    /// [`transmit`]: Chain::transmit
    pub fn transmit_into(&self, payload: &[u8], scratch: &mut ChainScratch, out: &mut FlatSymbols) {
        scratch.bits.clear();
        scratch.bits.extend_from_slice(payload);
        Scrambler::new(self.scrambler_seed).process(&mut scratch.bits);
        scratch.coded.clear();
        encode_append(&scratch.bits, self.mcs.rate, &mut scratch.coded);
        let block = self.interleaver.block_len();
        let pad = (block - scratch.coded.len() % block) % block;
        let padded = scratch.coded.len() + pad;
        scratch.coded.resize(padded, 0);
        out.data.clear();
        out.n_symbols = padded / block;
        out.payload_bits = payload.len();
        let bps = self.mapper.bits_per_symbol();
        for chunk_start in (0..padded).step_by(block) {
            self.interleaver.interleave_into(
                &scratch.coded[chunk_start..chunk_start + block],
                &mut scratch.inter,
            );
            for group in scratch.inter.chunks(bps) {
                out.data.push(self.mapper.map_symbol(group));
            }
        }
    }

    /// [`receive`] from a flat (post-equalization) symbol buffer into
    /// caller-owned scratch: bit-identical decisions, no allocation once
    /// warmed. `symbols.len()` must be a multiple of 52.
    ///
    /// [`receive`]: Chain::receive
    pub fn receive_into(
        &self,
        symbols: &[C64],
        payload_bits: usize,
        scratch: &mut ChainScratch,
        out: &mut Vec<u8>,
    ) {
        assert_eq!(symbols.len() % DATA_SUBCARRIERS, 0, "need whole symbols");
        scratch.coded.clear();
        for sym in symbols.chunks(DATA_SUBCARRIERS) {
            scratch.hard.clear();
            for &y in sym {
                self.mapper.demap_symbol(y, &mut scratch.hard);
            }
            self.interleaver
                .deinterleave_into(&scratch.hard, &mut scratch.inter);
            scratch.coded.extend_from_slice(&scratch.inter);
        }
        scratch
            .coded
            .truncate(coded_len(payload_bits, self.mcs.rate));
        viterbi_decode_into(
            &scratch.coded,
            payload_bits,
            self.mcs.rate,
            &mut scratch.viterbi,
            out,
        );
        Scrambler::new(self.scrambler_seed).process(out);
    }
    // alloc-free: end chain_into

    /// Payload bits that fit in `n_symbols` OFDM symbols (ignoring tail
    /// rounding; useful for sizing test frames).
    pub fn payload_capacity(&self, n_symbols: usize) -> usize {
        let coded = n_symbols * self.interleaver.block_len();
        let (k, n) = self.mcs.rate.ratio();
        (coded * k / n).saturating_sub(CONSTRAINT_LENGTH - 1)
    }

    /// Soft-decision receive: per-subcarrier LLR demapping followed by a
    /// soft Viterbi pass (the ~2 dB-better path real receivers use).
    ///
    /// `noise_var[t][s]` is the post-equalization complex noise variance of
    /// OFDM symbol `t`, subcarrier `s` (for zero-forcing equalization this
    /// is `noise / |h_s|^2`, so faded subcarriers contribute weak LLRs --
    /// exactly the per-subcarrier reliability information hard decisions
    /// throw away).
    pub fn receive_soft(
        &self,
        received: &[Vec<C64>],
        noise_var: &[Vec<f64>],
        payload_bits: usize,
    ) -> Vec<u8> {
        assert_eq!(received.len(), noise_var.len());
        let block = self.interleaver.block_len();
        let bps = self.mapper.bits_per_symbol();
        let mut llrs: Vec<f64> = Vec::new();
        for (sym, nv) in received.iter().zip(noise_var) {
            assert_eq!(sym.len(), DATA_SUBCARRIERS);
            // LLRs in interleaved order...
            let mut sym_llrs = Vec::with_capacity(block);
            for (s, &y) in sym.iter().enumerate() {
                crate::soft::soft_demap(&self.mapper, y, nv[s], &mut sym_llrs);
            }
            debug_assert_eq!(sym_llrs.len(), DATA_SUBCARRIERS * bps);
            // ...deinterleaved back to coded order.
            let mut deint = vec![0.0; block];
            for (j, llr) in sym_llrs.iter().enumerate() {
                deint[self.interleaver.deinterleave_index(j)] = *llr;
            }
            llrs.extend(deint);
        }
        let coded_len = encode(&vec![0u8; payload_bits], self.mcs.rate).len();
        llrs.truncate(coded_len);
        let mut bits = crate::soft::soft_viterbi_decode(&llrs, payload_bits, self.mcs.rate);
        Scrambler::new(self.scrambler_seed).process(&mut bits);
        bits
    }
}

/// Time-domain OFDM modulation of one symbol: places the 52 data symbols on
/// their FFT bins, IFFTs, and prepends the cyclic prefix
/// (returns `FFT_SIZE + CP_SAMPLES` samples).
pub fn ofdm_modulate(data: &[C64]) -> Vec<C64> {
    assert_eq!(data.len(), DATA_SUBCARRIERS);
    let bins = data_subcarrier_bins();
    let mut freq = vec![ZERO; FFT_SIZE];
    for (&bin, &x) in bins.iter().zip(data) {
        freq[bin] = x;
    }
    let time = ifft(&freq);
    let mut out = Vec::with_capacity(FFT_SIZE + CP_SAMPLES);
    out.extend_from_slice(&time[FFT_SIZE - CP_SAMPLES..]);
    out.extend_from_slice(&time);
    out
}

/// Inverse of [`ofdm_modulate`]: strips the CP, FFTs, extracts data bins.
pub fn ofdm_demodulate(samples: &[C64]) -> Vec<C64> {
    assert_eq!(samples.len(), FFT_SIZE + CP_SAMPLES);
    let freq = fft(&samples[CP_SAMPLES..]);
    let bins = data_subcarrier_bins();
    bins.iter().map(|&b| freq[b]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copa_num::SimRng;

    fn random_bits(rng: &mut SimRng, n: usize) -> Vec<u8> {
        (0..n).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    #[test]
    fn clean_channel_round_trip_all_mcs() {
        let mut rng = SimRng::seed_from(1);
        for mcs in Mcs::TABLE {
            let chain = Chain::new(mcs);
            let payload = random_bits(&mut rng, chain.payload_capacity(6));
            let frame = chain.transmit(&payload);
            let decoded = chain.receive(&frame.symbols, payload.len());
            assert_eq!(decoded, payload, "{mcs}");
        }
    }

    #[test]
    fn survives_additive_noise_within_margin() {
        // MCS0 (BPSK 1/2) at 10 dB SNR decodes error-free with
        // overwhelming probability.
        let mut rng = SimRng::seed_from(2);
        let chain = Chain::new(Mcs::TABLE[0]);
        let payload = random_bits(&mut rng, chain.payload_capacity(10));
        let frame = chain.transmit(&payload);
        let sigma = copa_num::special::db_to_lin(-10.0).sqrt();
        let noisy: Vec<Vec<C64>> = frame
            .symbols
            .iter()
            .map(|sym| sym.iter().map(|&x| x + rng.randc().scale(sigma)).collect())
            .collect();
        let decoded = chain.receive(&noisy, payload.len());
        assert_eq!(decoded, payload);
    }

    #[test]
    fn high_mcs_fails_at_low_snr() {
        // MCS7 (64-QAM 5/6) at 8 dB must produce bit errors -- the chain is
        // honest about its limits.
        let mut rng = SimRng::seed_from(3);
        let chain = Chain::new(Mcs::TABLE[7]);
        let payload = random_bits(&mut rng, chain.payload_capacity(10));
        let frame = chain.transmit(&payload);
        let sigma = copa_num::special::db_to_lin(-8.0).sqrt();
        let noisy: Vec<Vec<C64>> = frame
            .symbols
            .iter()
            .map(|sym| sym.iter().map(|&x| x + rng.randc().scale(sigma)).collect())
            .collect();
        let decoded = chain.receive(&noisy, payload.len());
        let errs = decoded.iter().zip(&payload).filter(|(a, b)| a != b).count();
        assert!(errs > 0, "MCS7 at 8 dB should not decode cleanly");
    }

    #[test]
    fn soft_receive_round_trips_cleanly() {
        let mut rng = SimRng::seed_from(7);
        for mcs in [Mcs::TABLE[0], Mcs::TABLE[4], Mcs::TABLE[7]] {
            let chain = Chain::new(mcs);
            let payload = random_bits(&mut rng, chain.payload_capacity(5));
            let frame = chain.transmit(&payload);
            let nv = vec![vec![1e-4; DATA_SUBCARRIERS]; frame.symbols.len()];
            let decoded = chain.receive_soft(&frame.symbols, &nv, payload.len());
            assert_eq!(decoded, payload, "{mcs}");
        }
    }

    #[test]
    fn soft_receive_beats_hard_at_marginal_snr() {
        // MCS3 (16-QAM 1/2) near its sensitivity threshold: soft decoding
        // should leave fewer bit errors than hard decoding on the same
        // received symbols, aggregated over several frames.
        let mut rng = SimRng::seed_from(8);
        let chain = Chain::new(Mcs::TABLE[3]);
        let snr_db = 7.0;
        let sigma2 = copa_num::special::db_to_lin(-snr_db);
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        for _ in 0..8 {
            let payload = random_bits(&mut rng, chain.payload_capacity(6));
            let frame = chain.transmit(&payload);
            let noisy: Vec<Vec<C64>> = frame
                .symbols
                .iter()
                .map(|sym| {
                    sym.iter()
                        .map(|&x| x + rng.randc().scale(sigma2.sqrt()))
                        .collect()
                })
                .collect();
            let hard = chain.receive(&noisy, payload.len());
            let nv = vec![vec![sigma2; DATA_SUBCARRIERS]; noisy.len()];
            let soft = chain.receive_soft(&noisy, &nv, payload.len());
            hard_errs += hard.iter().zip(&payload).filter(|(a, b)| a != b).count();
            soft_errs += soft.iter().zip(&payload).filter(|(a, b)| a != b).count();
        }
        assert!(
            soft_errs < hard_errs,
            "soft ({soft_errs}) should beat hard ({hard_errs}) at {snr_db} dB"
        );
    }

    #[test]
    fn ofdm_time_domain_round_trip() {
        let mut rng = SimRng::seed_from(4);
        let data: Vec<C64> = (0..DATA_SUBCARRIERS).map(|_| rng.randc()).collect();
        let time = ofdm_modulate(&data);
        assert_eq!(time.len(), 80);
        let back = ofdm_demodulate(&time);
        for (a, b) in data.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let mut rng = SimRng::seed_from(5);
        let data: Vec<C64> = (0..DATA_SUBCARRIERS).map(|_| rng.randc()).collect();
        let time = ofdm_modulate(&data);
        for i in 0..CP_SAMPLES {
            assert!((time[i] - time[FFT_SIZE + i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cp_absorbs_channel_delay() {
        // A two-tap channel (delay < CP) applied in the time domain equals
        // per-subcarrier multiplication by the channel's frequency response.
        let mut rng = SimRng::seed_from(6);
        let data: Vec<C64> = (0..DATA_SUBCARRIERS).map(|_| rng.randc()).collect();
        let time = ofdm_modulate(&data);
        let h0 = C64::new(0.8, 0.1);
        let h3 = C64::new(-0.3, 0.4);
        // Convolve (circularly valid thanks to the CP; ignore the first
        // CP samples which carry inter-symbol junk in a real stream).
        let mut rx = vec![ZERO; time.len()];
        for (i, &x) in time.iter().enumerate() {
            rx[i] += h0 * x;
            if i + 3 < time.len() {
                rx[i + 3] += h3 * x;
            }
        }
        let received = ofdm_demodulate(&rx);
        // Expected: H[k] * data[k] with H from the tapped delay line.
        let resp = copa_num::fft::tapped_delay_response(&[(0, h0), (3, h3)], FFT_SIZE);
        let bins = data_subcarrier_bins();
        for ((r, &bin), d) in received.iter().zip(&bins).zip(&data) {
            let expect = resp[bin] * *d;
            assert!(
                (*r - expect).abs() < 1e-9,
                "subcarrier at bin {bin}: {r:?} vs {expect:?}"
            );
        }
    }

    #[test]
    fn pooled_chain_is_bit_identical_and_reusable() {
        // One scratch reused across every MCS: the pooled transmit/receive
        // must reproduce the owned paths bit for bit, including through
        // noise-corrupted symbols.
        let mut rng = SimRng::seed_from(9);
        let mut scratch = ChainScratch::new();
        let mut flat = FlatSymbols::new();
        let mut decoded_pooled = Vec::new();
        for mcs in Mcs::TABLE {
            let chain = Chain::new(mcs);
            let payload = random_bits(&mut rng, chain.payload_capacity(5));
            let frame = chain.transmit(&payload);
            chain.transmit_into(&payload, &mut scratch, &mut flat);
            assert_eq!(flat.n_symbols(), frame.symbols.len(), "{mcs}");
            assert_eq!(flat.payload_bits(), payload.len());
            for (t, sym) in frame.symbols.iter().enumerate() {
                for (a, b) in sym.iter().zip(flat.symbol(t)) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "{mcs}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "{mcs}");
                }
            }
            // Corrupt the symbols and compare the decoded bits.
            let sigma = 0.15;
            let noisy: Vec<Vec<C64>> = frame
                .symbols
                .iter()
                .map(|sym| sym.iter().map(|&x| x + rng.randc().scale(sigma)).collect())
                .collect();
            let noisy_flat: Vec<C64> = noisy.iter().flatten().copied().collect();
            let owned = chain.receive(&noisy, payload.len());
            chain.receive_into(
                &noisy_flat,
                payload.len(),
                &mut scratch,
                &mut decoded_pooled,
            );
            assert_eq!(owned, decoded_pooled, "{mcs}");
        }
    }

    #[test]
    fn payload_capacity_consistent() {
        for mcs in Mcs::TABLE {
            let chain = Chain::new(mcs);
            let cap = chain.payload_capacity(8);
            let frame = chain.transmit(&vec![0u8; cap]);
            assert!(
                frame.symbols.len() <= 8,
                "{mcs}: {} symbols for capacity payload",
                frame.symbols.len()
            );
        }
    }
}
