//! The 802.11n modulation-and-coding-scheme (MCS) table.
//!
//! One MCS applies to *all* subcarriers of a transmission -- the constraint
//! at the heart of COPA: a few low-SINR subcarriers force the whole frame to
//! a lower MCS, so power allocation / subcarrier dropping pays.

use crate::coding::CodeRate;
use crate::modulation::Modulation;
use crate::ofdm::{DATA_SUBCARRIERS, SYMBOL_DURATION_S};

/// A single-stream 802.11n MCS (index 0-7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mcs {
    /// MCS index 0-7.
    pub index: u8,
    /// Constellation.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub rate: CodeRate,
}

impl Mcs {
    /// The eight single-stream 802.11n MCSes, slowest (most robust) first.
    pub const TABLE: [Mcs; 8] = [
        Mcs {
            index: 0,
            modulation: Modulation::Bpsk,
            rate: CodeRate::R12,
        },
        Mcs {
            index: 1,
            modulation: Modulation::Qpsk,
            rate: CodeRate::R12,
        },
        Mcs {
            index: 2,
            modulation: Modulation::Qpsk,
            rate: CodeRate::R34,
        },
        Mcs {
            index: 3,
            modulation: Modulation::Qam16,
            rate: CodeRate::R12,
        },
        Mcs {
            index: 4,
            modulation: Modulation::Qam16,
            rate: CodeRate::R34,
        },
        Mcs {
            index: 5,
            modulation: Modulation::Qam64,
            rate: CodeRate::R23,
        },
        Mcs {
            index: 6,
            modulation: Modulation::Qam64,
            rate: CodeRate::R34,
        },
        Mcs {
            index: 7,
            modulation: Modulation::Qam64,
            rate: CodeRate::R56,
        },
    ];

    /// Information bits carried per data subcarrier per OFDM symbol.
    pub fn bits_per_subcarrier(self) -> f64 {
        self.modulation.bits_per_symbol() as f64 * self.rate.fraction()
    }

    /// Nominal PHY rate in bits/s with all 52 data subcarriers active
    /// (one spatial stream, 800 ns GI).
    pub fn phy_rate_bps(self) -> f64 {
        self.bits_per_subcarrier() * DATA_SUBCARRIERS as f64 / SYMBOL_DURATION_S
    }

    /// PHY rate in bits/s when only `active` of the 52 data subcarriers
    /// carry data (COPA's subcarrier dropping reduces the rate
    /// proportionally).
    pub fn phy_rate_bps_with(self, active: usize) -> f64 {
        self.bits_per_subcarrier() * active as f64 / SYMBOL_DURATION_S
    }
}

impl std::fmt::Display for Mcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MCS{} ({} {}, {:.1} Mbps)",
            self.index,
            self.modulation,
            self.rate,
            self.phy_rate_bps() / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_rates_match_standard() {
        // 802.11n 20 MHz, 800 ns GI, 1 spatial stream: 6.5..65 Mbps.
        let expected = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0];
        for (mcs, want) in Mcs::TABLE.iter().zip(expected) {
            let got = mcs.phy_rate_bps() / 1e6;
            assert!((got - want).abs() < 1e-9, "{mcs}: got {got}, want {want}");
        }
    }

    #[test]
    fn rates_strictly_increase() {
        for w in Mcs::TABLE.windows(2) {
            assert!(w[1].phy_rate_bps() > w[0].phy_rate_bps());
        }
    }

    #[test]
    fn dropped_subcarriers_scale_rate_linearly() {
        let mcs = Mcs::TABLE[7];
        assert_eq!(mcs.phy_rate_bps_with(DATA_SUBCARRIERS), mcs.phy_rate_bps());
        assert!((mcs.phy_rate_bps_with(26) - mcs.phy_rate_bps() / 2.0).abs() < 1e-9);
        assert_eq!(mcs.phy_rate_bps_with(0), 0.0);
    }

    #[test]
    fn indices_are_sequential() {
        for (i, mcs) in Mcs::TABLE.iter().enumerate() {
            assert_eq!(mcs.index as usize, i);
        }
    }
}
