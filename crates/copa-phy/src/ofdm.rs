//! 802.11n 20 MHz OFDM channelization constants.
//!
//! COPA operates per subcarrier, so everything downstream is indexed by the
//! 52 data subcarriers of the 20 MHz 802.11n channel (platform limitations
//! confined the paper to 20 MHz; we adopt the same).

/// OFDM FFT size for a 20 MHz 802.11n channel.
pub const FFT_SIZE: usize = 64;

/// Number of occupied (non-null) subcarriers: -28..=28 minus DC in 802.11n HT.
pub const OCCUPIED_SUBCARRIERS: usize = 56;

/// Number of *data* subcarriers (occupied minus 4 pilots).
pub const DATA_SUBCARRIERS: usize = 52;

/// Pilot subcarrier logical indices (within -28..=28): +-7 and +-21.
pub const PILOT_OFFSETS: [i32; 4] = [-21, -7, 7, 21];

/// OFDM symbol duration with the 800 ns guard interval, in seconds.
pub const SYMBOL_DURATION_S: f64 = 4.0e-6;

/// Cyclic prefix (guard interval) duration, in seconds. Concurrent
/// transmissions must be synchronized within this window (paper section 3.1).
pub const CYCLIC_PREFIX_S: f64 = 0.8e-6;

/// Channel bandwidth in Hz.
pub const BANDWIDTH_HZ: f64 = 20.0e6;

/// Carrier frequency used in the paper's testbed (2.4 GHz band), in Hz.
pub const CARRIER_HZ: f64 = 2.437e9;

/// Carrier wavelength in meters (`c / f`).
pub fn carrier_wavelength_m() -> f64 {
    299_792_458.0 / CARRIER_HZ
}

/// Thermal noise floor over the 20 MHz channel in dBm
/// (`-174 dBm/Hz + 10 log10(2e7) = -101 dBm`) plus a typical receiver noise
/// figure of 6 dB, giving -95 dBm.
pub const NOISE_FLOOR_DBM: f64 = -95.0;

/// Maximum transmit power used in the paper's experiments (WARP v2), dBm.
pub const MAX_TX_POWER_DBM: f64 = 15.0;

/// Logical data-subcarrier indices mapped onto FFT bins.
///
/// Occupied bins are -28..=28 excluding DC (0); pilots at +-7 and +-21 are
/// excluded. Negative frequencies map to FFT bins `FFT_SIZE + k`.
pub fn data_subcarrier_bins() -> Vec<usize> {
    let mut bins = Vec::with_capacity(DATA_SUBCARRIERS);
    for k in -28i32..=28 {
        if k == 0 || PILOT_OFFSETS.contains(&k) {
            continue;
        }
        let bin = if k < 0 {
            (FFT_SIZE as i32 + k) as usize
        } else {
            k as usize
        };
        bins.push(bin);
    }
    bins
}

/// Coherence time `t_c = m * lambda / v` for a host moving at `speed_mps`,
/// with environment parameter `m` (the paper uses the conservative 0.25).
pub fn coherence_time_s(speed_mps: f64, m: f64) -> f64 {
    assert!(speed_mps > 0.0, "coherence time needs a positive speed");
    m * carrier_wavelength_m() / speed_mps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_counts() {
        let bins = data_subcarrier_bins();
        assert_eq!(bins.len(), DATA_SUBCARRIERS);
        // All bins valid and unique.
        let mut sorted = bins.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), DATA_SUBCARRIERS);
        assert!(bins.iter().all(|&b| b < FFT_SIZE));
        // DC (bin 0) and pilots excluded.
        assert!(!bins.contains(&0));
        assert!(!bins.contains(&7));
        assert!(!bins.contains(&21));
        assert!(!bins.contains(&(FFT_SIZE - 7)));
        assert!(!bins.contains(&(FFT_SIZE - 21)));
    }

    #[test]
    fn coherence_times_match_paper() {
        // Paper section 3.1: m = 0.25 gives ~28 ms at 4 km/h, ~112 ms at 1 km/h.
        let t4 = coherence_time_s(4.0 / 3.6, 0.25);
        let t1 = coherence_time_s(1.0 / 3.6, 0.25);
        assert!(
            (t4 * 1e3 - 27.7).abs() < 1.0,
            "4 km/h -> {:.1} ms",
            t4 * 1e3
        );
        assert!(
            (t1 * 1e3 - 110.7).abs() < 4.0,
            "1 km/h -> {:.1} ms",
            t1 * 1e3
        );
    }

    #[test]
    fn wavelength_is_about_12cm() {
        // The paper notes fading decorrelates over one wavelength (~12.5 cm).
        let lambda = carrier_wavelength_m();
        assert!((0.12..0.13).contains(&lambda), "lambda = {lambda}");
    }

    #[test]
    fn noise_floor_sane() {
        assert!(NOISE_FLOOR_DBM < -90.0 && NOISE_FLOOR_DBM > -100.0);
    }
}
