//! 802.11 convolutional coding: encoder, puncturing, Viterbi decoder, and
//! the union-bound coded-BER model.
//!
//! The paper's throughput predictor turns measured SINR into uncoded BER and
//! then into coded BER "for 802.11n's different coding rates" using the
//! standard convolutional-code analysis (Tse & Viswanath). We implement the
//! same union bound, plus a real K=7 (133, 171) encoder and hard-decision
//! Viterbi decoder so tests can validate the analytic model bit-by-bit.

use crate::modulation::Modulation;

/// 802.11 convolutional code rates (mother code K=7, generators 133/171
/// octal; higher rates by puncturing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodeRate {
    /// Rate 1/2 (unpunctured mother code).
    R12,
    /// Rate 2/3.
    R23,
    /// Rate 3/4.
    R34,
    /// Rate 5/6.
    R56,
}

impl CodeRate {
    /// All rates, most to least robust.
    pub const ALL: [CodeRate; 4] = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56];

    /// The code rate as a fraction.
    pub fn fraction(self) -> f64 {
        match self {
            CodeRate::R12 => 0.5,
            CodeRate::R23 => 2.0 / 3.0,
            CodeRate::R34 => 0.75,
            CodeRate::R56 => 5.0 / 6.0,
        }
    }

    /// `(numerator, denominator)` of the rate.
    pub fn ratio(self) -> (usize, usize) {
        match self {
            CodeRate::R12 => (1, 2),
            CodeRate::R23 => (2, 3),
            CodeRate::R34 => (3, 4),
            CodeRate::R56 => (5, 6),
        }
    }

    /// Puncturing pattern pairs `(keep_a, keep_b)` per input bit, cycling.
    /// `a` is the output of generator 133, `b` of generator 171.
    /// (Public alias for the soft decoder.)
    pub fn puncture_pattern_public(self) -> &'static [(bool, bool)] {
        self.puncture_pattern()
    }

    /// Puncturing pattern pairs `(keep_a, keep_b)` per input bit, cycling.
    fn puncture_pattern(self) -> &'static [(bool, bool)] {
        match self {
            CodeRate::R12 => &[(true, true)],
            CodeRate::R23 => &[(true, true), (true, false)],
            CodeRate::R34 => &[(true, true), (false, true), (true, false)],
            CodeRate::R56 => &[
                (true, true),
                (false, true),
                (true, false),
                (false, true),
                (true, false),
            ],
        }
    }

    /// Free distance and information-bit-error weight spectrum `(d, c_d)` of
    /// the punctured K=7 codes (standard tables used throughout the 802.11
    /// literature, e.g. Haccoun & Begin 1989).
    pub fn weight_spectrum(self) -> &'static [(u32, f64)] {
        match self {
            CodeRate::R12 => &[
                (10, 36.0),
                (12, 211.0),
                (14, 1404.0),
                (16, 11633.0),
                (18, 77433.0),
            ],
            CodeRate::R23 => &[
                (6, 3.0),
                (7, 70.0),
                (8, 285.0),
                (9, 1276.0),
                (10, 6160.0),
                (11, 27128.0),
            ],
            CodeRate::R34 => &[
                (5, 42.0),
                (6, 201.0),
                (7, 1492.0),
                (8, 10469.0),
                (9, 62935.0),
                (10, 379546.0),
            ],
            CodeRate::R56 => &[
                (4, 92.0),
                (5, 528.0),
                (6, 8694.0),
                (7, 79453.0),
                (8, 792114.0),
            ],
        }
    }
}

impl std::fmt::Display for CodeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (n, d) = self.ratio();
        write!(f, "{n}/{d}")
    }
}

/// Constraint length of the 802.11 mother code.
pub const CONSTRAINT_LENGTH: usize = 7;
/// Generator polynomial 133 (octal).
const G0: u32 = 0o133;
/// Generator polynomial 171 (octal).
const G1: u32 = 0o171;
const STATES: usize = 1 << (CONSTRAINT_LENGTH - 1); // 64

/// Encodes `bits` with the K=7 (133,171) code at `rate`, appending
/// `CONSTRAINT_LENGTH - 1` zero tail bits to terminate the trellis.
///
/// Punctured positions are simply omitted from the output, as transmitted on
/// air. The output length is therefore
/// `ceil((bits.len() + 6) * 2 * kept / (2 * pattern_len))` give or take the
/// cycle phase.
pub fn encode(bits: &[u8], rate: CodeRate) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len() * 2);
    encode_append(bits, rate, &mut out);
    out
}

/// Number of coded (on-air) bits [`encode`] produces for `info_len`
/// information bits at `rate`: walks the puncture pattern arithmetically,
/// so the receiver can size/truncate buffers without a throwaway encode.
pub fn coded_len(info_len: usize, rate: CodeRate) -> usize {
    let pattern = rate.puncture_pattern();
    let per_cycle: usize = pattern.iter().map(|&(a, b)| a as usize + b as usize).sum();
    let steps = info_len + CONSTRAINT_LENGTH - 1;
    let mut n = (steps / pattern.len()) * per_cycle;
    for &(a, b) in &pattern[..steps % pattern.len()] {
        n += a as usize + b as usize;
    }
    n
}

// alloc-free: begin encode_append (kernel -- caller-owned output buffer)
/// [`encode`] appending to a caller-owned buffer (bit-identical output;
/// no allocation once `out` has capacity).
pub fn encode_append(bits: &[u8], rate: CodeRate, out: &mut Vec<u8>) {
    let pattern = rate.puncture_pattern();
    let mut state: u32 = 0;
    for (i, &bit) in bits
        .iter()
        .chain(std::iter::repeat(&0u8).take(CONSTRAINT_LENGTH - 1))
        .enumerate()
    {
        debug_assert!(bit <= 1);
        let reg = (state << 1) | bit as u32;
        let a = (reg & G0).count_ones() & 1;
        let b = (reg & G1).count_ones() & 1;
        let (keep_a, keep_b) = pattern[i % pattern.len()];
        if keep_a {
            out.push(a as u8);
        }
        if keep_b {
            out.push(b as u8);
        }
        state = reg & ((1 << (CONSTRAINT_LENGTH - 1)) - 1);
    }
}
// alloc-free: end encode_append

/// Hard-decision Viterbi decoder matching [`encode`] (same rate, same
/// termination). Returns the decoded information bits (tail removed).
///
/// # Panics
/// Panics if `coded` is shorter than the encoder would have produced for
/// `info_len` bits.
pub fn viterbi_decode(coded: &[u8], info_len: usize, rate: CodeRate) -> Vec<u8> {
    let mut scratch = ViterbiScratch::new();
    let mut out = Vec::with_capacity(info_len);
    viterbi_decode_into(coded, info_len, rate, &mut scratch, &mut out);
    out
}

/// Reusable state for [`viterbi_decode_into`]: path metrics and the full
/// predecessor matrix. Buffers grow to the longest frame decoded, then the
/// warmed Monte-Carlo loop never touches the allocator.
#[derive(Clone, Debug, Default)]
pub struct ViterbiScratch {
    metric: Vec<u32>,
    next: Vec<u32>,
    /// Flat `total_steps x STATES` predecessor matrix.
    pred: Vec<u8>,
}

impl ViterbiScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

// alloc-free: begin viterbi_decode_into (kernel -- caller-owned scratch)
/// [`viterbi_decode`] writing into a caller-owned buffer with all working
/// state in `scratch`. Bit-identical to the owned version (same metrics,
/// same tie-breaking, same traceback).
///
/// # Panics
/// Panics if `coded` is shorter than the encoder would have produced for
/// `info_len` bits.
pub fn viterbi_decode_into(
    coded: &[u8],
    info_len: usize,
    rate: CodeRate,
    scratch: &mut ViterbiScratch,
    out: &mut Vec<u8>,
) {
    let pattern = rate.puncture_pattern();
    let total_steps = info_len + CONSTRAINT_LENGTH - 1;

    const INF: u32 = u32::MAX / 2;
    scratch.metric.clear();
    scratch.metric.resize(STATES, INF);
    scratch.metric[0] = 0;
    scratch.next.clear();
    scratch.next.resize(STATES, INF);
    scratch.pred.clear();
    scratch.pred.resize(total_steps * STATES, 0);

    // Walk the puncture pattern to find which coded positions exist;
    // erased positions contribute no metric.
    let mut idx = 0usize;
    for i in 0..total_steps {
        let (keep_a, keep_b) = pattern[i % pattern.len()];
        let ra = if keep_a {
            let v = coded.get(idx).copied();
            idx += 1;
            v
        } else {
            None
        };
        let rb = if keep_b {
            let v = coded.get(idx).copied();
            idx += 1;
            v
        } else {
            None
        };
        assert!(
            (!keep_a || ra.is_some()) && (!keep_b || rb.is_some()),
            "coded sequence too short"
        );

        let choice = &mut scratch.pred[i * STATES..(i + 1) * STATES];
        for v in scratch.next.iter_mut() {
            *v = INF;
        }
        for s in 0..STATES {
            if scratch.metric[s] == INF {
                continue;
            }
            for bit in 0..2u32 {
                let reg = ((s as u32) << 1) | bit;
                let a = ((reg & G0).count_ones() & 1) as u8;
                let b = ((reg & G1).count_ones() & 1) as u8;
                let ns = (reg & (STATES as u32 - 1)) as usize;
                let mut m = scratch.metric[s];
                if let Some(ra) = ra {
                    m += (ra != a) as u32;
                }
                if let Some(rb) = rb {
                    m += (rb != b) as u32;
                }
                if m < scratch.next[ns] {
                    scratch.next[ns] = m;
                    // Predecessor state fits in u8 for K=7 (64 states).
                    choice[ns] = s as u8;
                }
            }
        }
        std::mem::swap(&mut scratch.metric, &mut scratch.next);
    }

    // Terminated trellis: trace back from state 0.
    let mut state = 0usize;
    out.clear();
    out.resize(total_steps, 0);
    for i in (0..total_steps).rev() {
        let prev = scratch.pred[i * STATES + state] as usize;
        // state = ((prev << 1) | bit) & mask, so the input bit is state's LSB.
        out[i] = (state & 1) as u8;
        state = prev;
    }
    out.truncate(info_len);
}
// alloc-free: end viterbi_decode_into

/// `p^k` / `q^k` for every exponent the union bound touches, each entry the
/// exact `powi` the direct expression evaluated (`p^k` needs `k <= d`,
/// `q^(d-k)` only `d - k <= d/2`). One `coded_ber` call shares a single
/// crossover probability across all weights, so hoisting the tables
/// replaces ~80 `powi` evaluations with 29 without changing a bit.
fn power_tables(p: f64, q: f64) -> ([f64; MAX_WEIGHT + 1], [f64; MAX_WEIGHT / 2 + 1]) {
    let mut pk = [0.0f64; MAX_WEIGHT + 1];
    let mut qk = [0.0f64; MAX_WEIGHT / 2 + 1];
    for (k, cell) in pk.iter_mut().enumerate() {
        *cell = p.powi(k as i32);
    }
    for (k, cell) in qk.iter_mut().enumerate() {
        *cell = q.powi(k as i32);
    }
    (pk, qk)
}

/// Pairwise error probability of a weight-`d` error event on a binary
/// symmetric channel (hard-decision Viterbi), reading the hoisted power
/// tables (same op sequence as the direct per-term expression).
fn pairwise_error_tab(d: u32, pk: &[f64], qk: &[f64]) -> f64 {
    let d = d as i64;
    let mut sum = 0.0;
    if d % 2 == 0 {
        let k = d / 2;
        sum += 0.5 * binom(d, k) * pk[k as usize] * qk[(d - k) as usize];
        for k in (d / 2 + 1)..=d {
            sum += binom(d, k) * pk[k as usize] * qk[(d - k) as usize];
        }
    } else {
        for k in ((d + 1) / 2)..=d {
            sum += binom(d, k) * pk[k as usize] * qk[(d - k) as usize];
        }
    }
    sum.min(1.0)
}

/// Largest error-event weight in any [`CodeRate::weight_spectrum`], bounding
/// the binomial table below.
const MAX_WEIGHT: usize = 18;

/// `C(n, k)` for the small arguments the union bound needs, from a table
/// computed once by [`binom_compute`] -- the rate predictor evaluates
/// `pairwise_error` inside the equi-SINR drop loop, so these coefficients
/// are read millions of times per suite. Values are the exact f64s the
/// direct computation produces (same op sequence at fill time), so tabling
/// them is bit-identical.
fn binom(n: i64, k: i64) -> f64 {
    static TABLE: std::sync::OnceLock<[[f64; MAX_WEIGHT + 1]; MAX_WEIGHT + 1]> =
        std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [[0.0; MAX_WEIGHT + 1]; MAX_WEIGHT + 1];
        for (n, row) in t.iter_mut().enumerate() {
            for (k, cell) in row.iter_mut().enumerate().take(n + 1) {
                *cell = binom_compute(n as i64, k as i64);
            }
        }
        t
    });
    debug_assert!((0..=n).contains(&k));
    match table.get(n as usize).and_then(|row| row.get(k as usize)) {
        Some(&v) => v,
        None => binom_compute(n, k),
    }
}

fn binom_compute(n: i64, k: i64) -> f64 {
    let k = k.min(n - k);
    let mut r = 1.0f64;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

/// Coded BER after Viterbi decoding, from the channel (uncoded) BER `p`, via
/// the union bound with the code's weight spectrum. Clamped to `[0, 0.5]`.
pub fn coded_ber(p: f64, rate: CodeRate) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    let (k_num, _) = rate.ratio();
    // Same clamp `pairwise_error` applies per term, hoisted with the power
    // tables (every term sees the same crossover probability).
    let pc = p.min(0.5);
    let (pk, qk) = power_tables(pc, 1.0 - pc);
    let sum: f64 = rate
        .weight_spectrum()
        .iter()
        .map(|&(d, c)| c * pairwise_error_tab(d, &pk, &qk))
        .sum();
    (sum / k_num as f64).clamp(0.0, 0.5)
}

/// Frame error rate of an `len_bytes`-byte MPDU at coded BER `pb`:
/// `1 - (1 - pb)^(8 * len_bytes)`.
pub fn frame_error_rate(pb: f64, len_bytes: usize) -> f64 {
    frame_error_rate_bits(pb, len_bytes * 8)
}

/// [`frame_error_rate`] for a payload measured in bits rather than whole
/// bytes (the waveform validator's frames are sized by OFDM symbol count,
/// so their payloads are not byte multiples).
pub fn frame_error_rate_bits(pb: f64, len_bits: usize) -> f64 {
    let bits = len_bits as f64;
    if pb <= 0.0 {
        return 0.0;
    }
    if pb >= 1.0 {
        return 1.0;
    }
    // ln1p for numerical accuracy at tiny pb.
    1.0 - (bits * (-pb).ln_1p()).exp()
}

/// Coded BER for a modulation + rate pair at symbol SINR `gamma` (linear):
/// chains [`Modulation::uncoded_ber`] into [`coded_ber`].
pub fn coded_ber_at_sinr(modulation: Modulation, rate: CodeRate, gamma: f64) -> f64 {
    coded_ber(modulation.uncoded_ber(gamma), rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copa_num::SimRng;

    #[test]
    fn encode_rate_half_length() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let coded = encode(&bits, CodeRate::R12);
        assert_eq!(coded.len(), (bits.len() + 6) * 2);
    }

    #[test]
    fn punctured_lengths() {
        // 60 info bits + 6 tail = 66 steps.
        let bits = vec![0u8; 60];
        // R23: per 2 steps keep 3 -> 66/2*3 = 99.
        assert_eq!(encode(&bits, CodeRate::R23).len(), 99);
        // R34: per 3 steps keep 4 -> 66/3*4 = 88.
        assert_eq!(encode(&bits, CodeRate::R34).len(), 88);
        // R56: per 5 steps keep 6 -> 66 = 13*5+1; 13*6 + 2(first step keeps both) = 80.
        assert_eq!(encode(&bits, CodeRate::R56).len(), 80);
    }

    #[test]
    fn viterbi_decodes_clean_channel() {
        let mut rng = SimRng::seed_from(4);
        for rate in CodeRate::ALL {
            let bits: Vec<u8> = (0..120).map(|_| (rng.next_u64() & 1) as u8).collect();
            let coded = encode(&bits, rate);
            let decoded = viterbi_decode(&coded, bits.len(), rate);
            assert_eq!(decoded, bits, "clean decode failed at rate {rate}");
        }
    }

    #[test]
    fn viterbi_corrects_errors_at_rate_half() {
        // Rate 1/2, dfree = 10: up to 4 well-separated bit flips correctable.
        let mut rng = SimRng::seed_from(5);
        let bits: Vec<u8> = (0..200).map(|_| (rng.next_u64() & 1) as u8).collect();
        let mut coded = encode(&bits, CodeRate::R12);
        for &pos in &[10usize, 100, 200, 300] {
            coded[pos] ^= 1;
        }
        let decoded = viterbi_decode(&coded, bits.len(), CodeRate::R12);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn viterbi_beats_uncoded_on_noisy_channel() {
        // Empirical check that the decoder actually corrects: BSC with p=0.02,
        // rate 1/2 should decode with far fewer errors than 2%.
        let mut rng = SimRng::seed_from(6);
        let n = 2000;
        let bits: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 1) as u8).collect();
        let mut coded = encode(&bits, CodeRate::R12);
        let mut flips = 0;
        for b in coded.iter_mut() {
            if rng.uniform() < 0.02 {
                *b ^= 1;
                flips += 1;
            }
        }
        assert!(flips > 0);
        let decoded = viterbi_decode(&coded, n, CodeRate::R12);
        let errs = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert!(
            (errs as f64 / n as f64) < 0.002,
            "decoder left {errs}/{n} errors"
        );
    }

    #[test]
    fn coded_ber_ordering_and_limits() {
        // More redundancy -> lower coded BER at the same channel BER.
        for &p in &[1e-3, 5e-3, 1e-2] {
            let bers: Vec<f64> = CodeRate::ALL.iter().map(|&r| coded_ber(p, r)).collect();
            for w in bers.windows(2) {
                assert!(w[0] <= w[1], "rate ordering violated at p={p}: {bers:?}");
            }
        }
        assert_eq!(coded_ber(0.0, CodeRate::R12), 0.0);
        assert!(coded_ber(0.4, CodeRate::R12) <= 0.5);
    }

    #[test]
    fn coded_ber_monotone_in_channel_ber() {
        for rate in CodeRate::ALL {
            let mut prev = 0.0;
            for i in 0..60 {
                let p = 10f64.powf(-6.0 + i as f64 * 0.1);
                let c = coded_ber(p, rate);
                assert!(c >= prev - 1e-18, "not monotone at p={p}, rate {rate}");
                prev = c;
            }
        }
    }

    #[test]
    fn union_bound_tracks_simulation() {
        // At channel BER 1%, rate 1/2: simulate and compare order of magnitude.
        let p = 0.01;
        let predicted = coded_ber(p, CodeRate::R12);
        let mut rng = SimRng::seed_from(77);
        let n = 40_000;
        let bits: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 1) as u8).collect();
        let mut coded = encode(&bits, CodeRate::R12);
        for b in coded.iter_mut() {
            if rng.uniform() < p {
                *b ^= 1;
            }
        }
        let decoded = viterbi_decode(&coded, n, CodeRate::R12);
        let errs = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
        let sim = errs as f64 / n as f64;
        // Union bound is an upper bound; it should not be below the simulation
        // by much, nor absurdly far above.
        assert!(
            predicted >= sim * 0.3 && predicted <= sim * 50.0 + 1e-6,
            "union bound {predicted:e} vs simulated {sim:e}"
        );
    }

    #[test]
    fn fer_properties() {
        assert_eq!(frame_error_rate(0.0, 1500), 0.0);
        assert_eq!(frame_error_rate(1.0, 1500), 1.0);
        let f1 = frame_error_rate(1e-6, 1500);
        let f2 = frame_error_rate(1e-5, 1500);
        assert!(f1 < f2 && f2 < 1.0);
        // ~ bits * pb for tiny pb.
        assert!((f1 / (12000.0 * 1e-6) - 1.0).abs() < 0.01);
    }

    #[test]
    fn coded_len_matches_encode() {
        for rate in CodeRate::ALL {
            for info in [1usize, 7, 60, 100, 731] {
                assert_eq!(
                    coded_len(info, rate),
                    encode(&vec![0u8; info], rate).len(),
                    "rate {rate}, {info} info bits"
                );
            }
        }
    }

    #[test]
    fn pooled_viterbi_is_bit_identical_and_reusable() {
        let mut rng = SimRng::seed_from(17);
        let mut scratch = ViterbiScratch::new();
        let mut out = Vec::new();
        // Reuse scratch across rates and frame lengths, with injected errors.
        for rate in CodeRate::ALL {
            for info in [40usize, 173] {
                let bits: Vec<u8> = (0..info).map(|_| (rng.next_u64() & 1) as u8).collect();
                let mut coded = encode(&bits, rate);
                for b in coded.iter_mut() {
                    if rng.uniform() < 0.02 {
                        *b ^= 1;
                    }
                }
                let owned = viterbi_decode(&coded, info, rate);
                viterbi_decode_into(&coded, info, rate, &mut scratch, &mut out);
                assert_eq!(owned, out, "rate {rate}, {info} info bits");
            }
        }
    }

    #[test]
    fn frame_error_rate_bits_consistent_with_bytes() {
        for pb in [1e-7, 1e-4, 0.02] {
            assert_eq!(
                frame_error_rate(pb, 1500),
                frame_error_rate_bits(pb, 1500 * 8)
            );
        }
        assert_eq!(frame_error_rate_bits(0.0, 999), 0.0);
        assert_eq!(frame_error_rate_bits(1.0, 999), 1.0);
    }

    #[test]
    fn spectra_start_at_free_distance() {
        assert_eq!(CodeRate::R12.weight_spectrum()[0].0, 10);
        assert_eq!(CodeRate::R23.weight_spectrum()[0].0, 6);
        assert_eq!(CodeRate::R34.weight_spectrum()[0].0, 5);
        assert_eq!(CodeRate::R56.weight_spectrum()[0].0, 4);
    }
}
