//! Link-level throughput prediction.
//!
//! Mirrors the paper's methodology (section 4.1): per-subcarrier SINR ->
//! uncoded BER -> coded BER -> frame error rate -> expected goodput over a
//! 4 ms transmit opportunity, including the MAC airtime efficiency supplied
//! by the caller (`copa-mac` computes it per scheme).
//!
//! The key 802.11 constraint is modeled faithfully: a single modulation and
//! convolutional code covers every active subcarrier, and the bit
//! interleaver spreads coded bits across subcarriers, so the decoder sees
//! the *average* of the per-subcarrier raw BERs. A few terrible subcarriers
//! therefore drag the whole frame down -- the effect COPA exploits by
//! dropping them.

use crate::coding::{coded_ber, frame_error_rate};
use crate::mcs::Mcs;
use crate::ofdm::DATA_SUBCARRIERS;

/// Default MPDU size used for frame-error conversion (a full-size data
/// frame; the paper aggregates MPDUs into 4 ms A-MPDUs with per-MPDU
/// delivery via block ACK).
pub const DEFAULT_MPDU_BYTES: usize = 1500;

/// Throughput model parameters.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputModel {
    /// MPDU size in bytes for FER conversion.
    pub mpdu_bytes: usize,
}

impl Default for ThroughputModel {
    fn default() -> Self {
        Self {
            mpdu_bytes: DEFAULT_MPDU_BYTES,
        }
    }
}

/// Outcome of rate selection for one transmission.
#[derive(Clone, Copy, Debug)]
pub struct RateChoice {
    /// Chosen MCS.
    pub mcs: Mcs,
    /// Expected goodput in bits/s (PHY rate x (1 - FER) x airtime efficiency).
    pub goodput_bps: f64,
    /// Effective (subcarrier-averaged) uncoded BER at the chosen MCS.
    pub uncoded_ber: f64,
    /// Coded BER after Viterbi at the chosen MCS.
    pub coded_ber: f64,
    /// Frame error rate for an MPDU.
    pub fer: f64,
}

impl ThroughputModel {
    /// Effective raw BER seen by the (single) decoder: the mean of the
    /// per-active-subcarrier uncoded BERs (the interleaver mixes them).
    pub fn effective_uncoded_ber(&self, mcs: Mcs, sinrs: &[f64]) -> f64 {
        if sinrs.is_empty() {
            return 0.5;
        }
        sinrs
            .iter()
            .map(|&g| mcs.modulation.uncoded_ber(g))
            .sum::<f64>()
            / sinrs.len() as f64
    }

    /// Predicted goodput of one MCS over the given active cells.
    ///
    /// `sinrs` holds the linear SINR of every *active* (stream, subcarrier)
    /// cell; dropped subcarriers are simply absent and reduce the PHY rate
    /// proportionally. `airtime_efficiency` is the fraction of wall-clock
    /// time spent sending data symbols (from the MAC overhead model).
    pub fn evaluate(&self, mcs: Mcs, sinrs: &[f64], airtime_efficiency: f64) -> RateChoice {
        if sinrs.is_empty() {
            return RateChoice {
                mcs,
                goodput_bps: 0.0,
                uncoded_ber: 0.5,
                coded_ber: 0.5,
                fer: 1.0,
            };
        }
        let p = self.effective_uncoded_ber(mcs, sinrs);
        let pb = coded_ber(p, mcs.rate);
        let fer = frame_error_rate(pb, self.mpdu_bytes);
        let goodput = mcs.phy_rate_bps_with(sinrs.len()) * (1.0 - fer) * airtime_efficiency;
        RateChoice {
            mcs,
            goodput_bps: goodput,
            uncoded_ber: p,
            coded_ber: pb,
            fer,
        }
    }

    /// Rate adaptation: evaluates every MCS and returns the goodput-max.
    pub fn best(&self, sinrs: &[f64], airtime_efficiency: f64) -> RateChoice {
        Mcs::TABLE
            .iter()
            .map(|&m| self.evaluate(m, sinrs, airtime_efficiency))
            .max_by(|a, b| a.goodput_bps.total_cmp(&b.goodput_bps))
            .expect("MCS table is non-empty")
    }

    /// [`ThroughputModel::effective_uncoded_ber`] for the flat SINR vector
    /// `[g; n]`, without materializing it. Every entry maps to the same
    /// per-subcarrier BER, so it is computed once and folded `n` times with
    /// the same left-to-right sum as the iterator version -- the result is
    /// bit-identical, at one `erfc` evaluation instead of `n`.
    pub fn effective_uncoded_ber_flat(&self, mcs: Mcs, g: f64, n: usize) -> f64 {
        if n == 0 {
            return 0.5;
        }
        let ber = mcs.modulation.uncoded_ber(g);
        let mut sum = 0.0f64;
        for _ in 0..n {
            sum += ber;
        }
        sum / n as f64
    }

    /// [`ThroughputModel::evaluate`] for the flat SINR vector `[g; n]`
    /// (bit-identical, allocation-free, one BER evaluation).
    pub fn evaluate_flat(&self, mcs: Mcs, g: f64, n: usize, airtime_efficiency: f64) -> RateChoice {
        if n == 0 {
            return RateChoice {
                mcs,
                goodput_bps: 0.0,
                uncoded_ber: 0.5,
                coded_ber: 0.5,
                fer: 1.0,
            };
        }
        let p = self.effective_uncoded_ber_flat(mcs, g, n);
        let pb = coded_ber(p, mcs.rate);
        let fer = frame_error_rate(pb, self.mpdu_bytes);
        let goodput = mcs.phy_rate_bps_with(n) * (1.0 - fer) * airtime_efficiency;
        RateChoice {
            mcs,
            goodput_bps: goodput,
            uncoded_ber: p,
            coded_ber: pb,
            fer,
        }
    }

    /// [`ThroughputModel::best`] for the flat SINR vector `[g; n]`.
    ///
    /// This is the hot call in COPA's equi-SINR allocation: every surviving
    /// subcarrier is driven to the *same* target SINR, so rate selection
    /// there never needs a heterogeneous vector. Bit-identical to
    /// `best(&vec![g; n], airtime_efficiency)` (asserted by a unit test)
    /// while skipping `n - 1` of the `n` BER evaluations per MCS and the
    /// temporary vector.
    pub fn best_flat(&self, g: f64, n: usize, airtime_efficiency: f64) -> RateChoice {
        Mcs::TABLE
            .iter()
            .map(|&m| self.evaluate_flat(m, g, n, airtime_efficiency))
            .max_by(|a, b| a.goodput_bps.total_cmp(&b.goodput_bps))
            .expect("MCS table is non-empty")
    }

    /// Pruned [`ThroughputModel::best_flat`]: returns the goodput-max
    /// choice only when its goodput *strictly* exceeds `floor_bps`, and
    /// `None` otherwise.
    ///
    /// Walks the MCS table from the top. `phy_rate * airtime` caps any
    /// MCS's goodput (since `0 <= 1 - FER <= 1`), and bits-per-subcarrier
    /// is strictly decreasing down the table, so the walk stops at the
    /// first MCS whose cap cannot strictly beat the running best — usually
    /// after one or two BER evaluations instead of eight.
    ///
    /// Selection is bit-identical to `best_flat`: `max_by(total_cmp)` over
    /// the ascending table keeps the *last* of equal maxima, i.e. the
    /// highest-index maximal MCS, which is exactly what a descending walk
    /// keeping the *first* strict maximum returns; and any MCS skipped via
    /// its cap could never strictly exceed `floor_bps`, so a `None` here
    /// means `best_flat(..).goodput_bps <= floor_bps` exactly. Both facts
    /// are locked down by unit tests below.
    pub fn best_flat_above(
        &self,
        g: f64,
        n: usize,
        airtime_efficiency: f64,
        floor_bps: f64,
    ) -> Option<RateChoice> {
        let mut best: Option<RateChoice> = None;
        let mut best_val = floor_bps;
        for &m in Mcs::TABLE.iter().rev() {
            let cap = m.phy_rate_bps_with(n) * airtime_efficiency;
            if cap <= best_val {
                break;
            }
            let c = self.evaluate_flat(m, g, n, airtime_efficiency);
            if c.goodput_bps > best_val {
                best_val = c.goodput_bps;
                best = Some(c);
            }
        }
        best
    }

    /// Section 4.6 "multiple decoders": an independent MCS per subcarrier
    /// (one decoder per coding rate). Upper-bounds per-subcarrier rate
    /// adaptation by treating each subcarrier's coded stream independently.
    pub fn multi_decoder_goodput(&self, sinrs: &[f64], airtime_efficiency: f64) -> f64 {
        sinrs
            .iter()
            .map(|&g| {
                Mcs::TABLE
                    .iter()
                    .map(|&m| {
                        let pb = coded_ber(m.modulation.uncoded_ber(g), m.rate);
                        let fer = frame_error_rate(pb, self.mpdu_bytes);
                        m.bits_per_subcarrier() / crate::ofdm::SYMBOL_DURATION_S * (1.0 - fer)
                    })
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            * airtime_efficiency
    }
}

/// Minimum SINR (dB) at which each MCS achieves ~90% frame delivery on a
/// flat channel -- a convenience for quick sanity checks and examples.
pub fn mcs_sensitivity_db(model: &ThroughputModel, mcs: Mcs) -> f64 {
    let mut lo = -5.0;
    let mut hi = 40.0;
    let flat = |db: f64| {
        let g = copa_num::special::db_to_lin(db);
        let sinrs = vec![g; DATA_SUBCARRIERS];
        model.evaluate(mcs, &sinrs, 1.0).fer
    };
    if flat(hi) > 0.1 {
        return f64::INFINITY;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if flat(mid) > 0.1 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copa_num::special::db_to_lin;

    fn flat(db: f64) -> Vec<f64> {
        vec![db_to_lin(db); DATA_SUBCARRIERS]
    }

    #[test]
    fn high_snr_picks_top_mcs_at_full_rate() {
        let model = ThroughputModel::default();
        let choice = model.best(&flat(35.0), 1.0);
        assert_eq!(choice.mcs.index, 7);
        assert!(
            (choice.goodput_bps / 1e6 - 65.0).abs() < 0.5,
            "{}",
            choice.goodput_bps / 1e6
        );
        assert!(choice.fer < 1e-3);
    }

    #[test]
    fn low_snr_picks_robust_mcs() {
        let model = ThroughputModel::default();
        let choice = model.best(&flat(4.0), 1.0);
        assert!(choice.mcs.index <= 1, "picked {}", choice.mcs);
        assert!(choice.goodput_bps > 0.0);
    }

    #[test]
    fn goodput_monotone_in_snr() {
        let model = ThroughputModel::default();
        let mut prev = 0.0;
        for db in (0..40).step_by(2) {
            let g = model.best(&flat(db as f64), 1.0).goodput_bps;
            assert!(g >= prev - 1.0, "goodput dropped at {db} dB");
            prev = g;
        }
    }

    #[test]
    fn one_bad_subcarrier_drags_down_throughput() {
        // The single-decoder effect that motivates COPA: 51 great subcarriers
        // + 1 terrible one forces a lower MCS / higher FER.
        let model = ThroughputModel::default();
        let clean = model.best(&flat(30.0), 1.0);
        let mut dirty = flat(30.0);
        for s in dirty.iter_mut().take(4) {
            *s = db_to_lin(2.0);
        }
        let dirty_choice = model.best(&dirty, 1.0);
        assert!(
            dirty_choice.goodput_bps < 0.8 * clean.goodput_bps,
            "bad subcarriers should hurt: {} vs {}",
            dirty_choice.goodput_bps,
            clean.goodput_bps
        );
        // Dropping them (COPA's move) recovers most of the loss.
        let dropped: Vec<f64> = flat(30.0).into_iter().take(48).collect();
        let dropped_choice = model.best(&dropped, 1.0);
        assert!(dropped_choice.goodput_bps > dirty_choice.goodput_bps);
    }

    #[test]
    fn airtime_efficiency_scales_linearly() {
        let model = ThroughputModel::default();
        let full = model.best(&flat(25.0), 1.0).goodput_bps;
        let half = model.best(&flat(25.0), 0.5).goodput_bps;
        assert!((half / full - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_cells_give_zero() {
        let model = ThroughputModel::default();
        assert_eq!(model.best(&[], 1.0).goodput_bps, 0.0);
        assert_eq!(model.multi_decoder_goodput(&[], 1.0), 0.0);
    }

    #[test]
    fn multi_decoder_never_worse_on_dispersive_channel() {
        let model = ThroughputModel::default();
        // Alternating strong/weak subcarriers.
        let sinrs: Vec<f64> = (0..DATA_SUBCARRIERS)
            .map(|i| db_to_lin(if i % 2 == 0 { 30.0 } else { 8.0 }))
            .collect();
        let single = model.best(&sinrs, 1.0).goodput_bps;
        let multi = model.multi_decoder_goodput(&sinrs, 1.0);
        assert!(
            multi >= single,
            "multi-decoder {multi} should be >= single {single}"
        );
    }

    #[test]
    fn best_flat_is_bit_identical_to_best() {
        // The equi-SINR allocator relies on this exactly: `best_flat(g, n)`
        // must reproduce `best(&[g; n])` to the last bit, not approximately.
        let model = ThroughputModel::default();
        for n in [0usize, 1, 2, 13, DATA_SUBCARRIERS] {
            for db in [-3.0, 0.0, 4.7, 11.2, 19.9, 27.3, 38.0] {
                let g = db_to_lin(db);
                let vec_choice = model.best(&vec![g; n], 1.0);
                let flat_choice = model.best_flat(g, n, 1.0);
                assert_eq!(vec_choice.mcs.index, flat_choice.mcs.index);
                assert_eq!(
                    vec_choice.goodput_bps.to_bits(),
                    flat_choice.goodput_bps.to_bits(),
                    "goodput differs at n={n} db={db}"
                );
                assert_eq!(
                    vec_choice.uncoded_ber.to_bits(),
                    flat_choice.uncoded_ber.to_bits()
                );
                assert_eq!(
                    vec_choice.coded_ber.to_bits(),
                    flat_choice.coded_ber.to_bits()
                );
                assert_eq!(vec_choice.fer.to_bits(), flat_choice.fer.to_bits());
            }
        }
    }

    #[test]
    fn best_flat_above_is_bit_identical_to_best_flat() {
        // The pruned walk must reproduce `best_flat`'s winner exactly
        // (including the descending-first-max == ascending-last-max tie
        // rule) whenever the winner strictly beats the floor, and return
        // `None` exactly when it does not.
        let model = ThroughputModel::default();
        for n in [0usize, 1, 2, 13, DATA_SUBCARRIERS] {
            for db in [-10.0, -3.0, 0.0, 4.7, 11.2, 19.9, 27.3, 38.0, 60.0] {
                let g = db_to_lin(db);
                for airtime in [1.0, 0.88] {
                    let full = model.best_flat(g, n, airtime);
                    // Floors spanning "always wins" to "never wins", plus
                    // the exact winner value (strictness boundary).
                    for floor in [
                        f64::NEG_INFINITY,
                        0.0,
                        full.goodput_bps * 0.5,
                        full.goodput_bps,
                        full.goodput_bps * 2.0 + 1.0,
                    ] {
                        let pruned = model.best_flat_above(g, n, airtime, floor);
                        if full.goodput_bps > floor {
                            let p = pruned.expect("winner beats floor");
                            assert_eq!(p.mcs.index, full.mcs.index, "n={n} db={db}");
                            assert_eq!(p.goodput_bps.to_bits(), full.goodput_bps.to_bits());
                            assert_eq!(p.uncoded_ber.to_bits(), full.uncoded_ber.to_bits());
                            assert_eq!(p.coded_ber.to_bits(), full.coded_ber.to_bits());
                            assert_eq!(p.fer.to_bits(), full.fer.to_bits());
                        } else {
                            assert!(pruned.is_none(), "n={n} db={db} floor={floor}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sensitivity_thresholds_increase_with_mcs() {
        let model = ThroughputModel::default();
        let mut prev = f64::NEG_INFINITY;
        for mcs in Mcs::TABLE {
            let t = mcs_sensitivity_db(&model, mcs);
            assert!(t > prev, "{mcs} threshold {t} <= previous {prev}");
            prev = t;
        }
        // MCS0 decodes somewhere in the low single digits of dB.
        let t0 = mcs_sensitivity_db(&model, Mcs::TABLE[0]);
        assert!((0.0..8.0).contains(&t0), "MCS0 threshold {t0}");
    }
}
