//! Peak-to-average power ratio analysis.
//!
//! Section 4.1: "Selectively using subcarriers could problematically
//! increase the Peak to Average Power Ratio (PAPR). In our experiments
//! hosts only drop a few subcarriers; there are enough remaining and they
//! have enough entropy from data scrambling that we do not observe any
//! such problem." This module measures PAPR on the real OFDM modulator so
//! that claim can be checked rather than assumed.

use crate::baseband::ofdm_modulate;
use crate::mapper::Mapper;
use crate::modulation::Modulation;
use crate::ofdm::DATA_SUBCARRIERS;
use crate::scrambler::Scrambler;
use copa_num::complex::ZERO;
use copa_num::rng::SimRng;

/// PAPR of one OFDM symbol's time-domain samples, in dB.
pub fn papr_db(samples: &[copa_num::complex::C64]) -> f64 {
    let peak = samples.iter().map(|s| s.norm_sqr()).fold(0.0, f64::max);
    let avg = samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / samples.len() as f64;
    copa_num::special::lin_to_db(peak / avg.max(1e-300))
}

/// Statistics of PAPR over many random OFDM symbols with `dropped`
/// subcarriers zeroed (power redistributed to the survivors, as COPA does).
#[derive(Clone, Debug)]
pub struct PaprStats {
    /// Subcarriers dropped per symbol.
    pub dropped: usize,
    /// Whether the payload bits were scrambled.
    pub scrambled: bool,
    /// Mean PAPR, dB.
    pub mean_db: f64,
    /// 99th-percentile PAPR, dB.
    pub p99_db: f64,
}

/// Measures PAPR over `symbols` random OFDM symbols.
///
/// `dropped` subcarriers (the first `dropped` indices -- a worst case,
/// since contiguous gaps structure the waveform more than scattered ones)
/// carry zero power; the rest get scaled up to keep total symbol power
/// constant. With `scrambled = false`, a repetitive payload (all zeros) is
/// used, modeling the pathological structure scrambling exists to prevent.
pub fn measure_papr(
    modulation: Modulation,
    dropped: usize,
    scrambled: bool,
    symbols: usize,
    seed: u64,
) -> PaprStats {
    assert!(dropped < DATA_SUBCARRIERS);
    let mapper = Mapper::new(modulation);
    let bps = mapper.bits_per_symbol();
    let mut rng = SimRng::seed_from(seed);
    let active = DATA_SUBCARRIERS - dropped;
    let boost = (DATA_SUBCARRIERS as f64 / active as f64).sqrt();

    let mut paprs = Vec::with_capacity(symbols);
    let mut scrambler = Scrambler::new(0x5D);
    for _ in 0..symbols {
        let mut bits: Vec<u8> = if scrambled {
            (0..active * bps)
                .map(|_| (rng.next_u64() & 1) as u8)
                .collect()
        } else {
            vec![0u8; active * bps] // pathological repetitive payload
        };
        if scrambled {
            // Random bits already have full entropy; the standard still
            // scrambles, which is a no-op statistically.
            scrambler.process(&mut bits);
        }
        let mapped = mapper.map(&bits);
        let mut data = vec![ZERO; DATA_SUBCARRIERS];
        for (i, sym) in mapped.iter().enumerate() {
            data[dropped + i] = sym.scale(boost);
        }
        let time = ofdm_modulate(&data);
        paprs.push(papr_db(&time));
    }
    PaprStats {
        dropped,
        scrambled,
        mean_db: copa_num::stats::mean(&paprs),
        p99_db: copa_num::stats::percentile(&paprs, 99.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papr_of_single_tone_is_zero() {
        // One active subcarrier -> constant-envelope time signal.
        let mut data = vec![ZERO; DATA_SUBCARRIERS];
        data[10] = copa_num::complex::C64::real(1.0);
        let time = ofdm_modulate(&data);
        assert!(papr_db(&time) < 0.1, "single tone PAPR {}", papr_db(&time));
    }

    #[test]
    fn typical_ofdm_papr_is_around_10db() {
        let s = measure_papr(Modulation::Qam16, 0, true, 400, 1);
        assert!(
            (6.0..13.0).contains(&s.mean_db),
            "full-band OFDM mean PAPR {:.1} dB",
            s.mean_db
        );
        assert!(s.p99_db > s.mean_db);
    }

    #[test]
    fn paper_claim_dropping_few_subcarriers_is_benign() {
        // Dropping 8 subcarriers (the paper's Figure 7 case) with scrambled
        // data should cost well under 1 dB of 99th-percentile PAPR.
        let full = measure_papr(Modulation::Qam64, 0, true, 600, 2);
        let dropped = measure_papr(Modulation::Qam64, 8, true, 600, 2);
        assert!(
            dropped.p99_db < full.p99_db + 1.0,
            "8 dropped subcarriers should be benign: {:.1} vs {:.1} dB",
            dropped.p99_db,
            full.p99_db
        );
    }

    #[test]
    fn unscrambled_repetitive_payload_is_worse() {
        // Without scrambling, an all-zeros payload maps every subcarrier to
        // the same constellation point: coherent peaks, much higher PAPR.
        let scrambled = measure_papr(Modulation::Qpsk, 8, true, 300, 3);
        let structured = measure_papr(Modulation::Qpsk, 8, false, 300, 3);
        assert!(
            structured.mean_db > scrambled.mean_db + 3.0,
            "structure should inflate PAPR: {:.1} vs {:.1} dB",
            structured.mean_db,
            scrambled.mean_db
        );
    }
}
