//! The 802.11 frame scrambler.
//!
//! A 7-bit LFSR with polynomial `x^7 + x^4 + 1` whitens the data bits so
//! the OFDM waveform has enough entropy to keep the peak-to-average power
//! ratio in check -- the property the paper leans on when arguing that
//! dropping a few subcarriers "have enough entropy from data scrambling"
//! not to cause PAPR problems.

/// The 802.11 scrambler / descrambler (self-synchronizing: the same
/// operation both ways).
#[derive(Clone, Debug)]
pub struct Scrambler {
    state: u8, // 7 bits
}

impl Scrambler {
    /// Creates a scrambler with a 7-bit seed (nonzero per the standard).
    pub fn new(seed: u8) -> Self {
        assert!(seed & 0x7F != 0, "scrambler seed must be nonzero");
        Self { state: seed & 0x7F }
    }

    /// Next pseudo-random bit: `x7 XOR x4`, then shift.
    fn next_bit(&mut self) -> u8 {
        let b = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | b) & 0x7F;
        b
    }

    /// Scrambles (or descrambles) a bit sequence in place.
    pub fn process(&mut self, bits: &mut [u8]) {
        for b in bits.iter_mut() {
            debug_assert!(*b <= 1);
            *b ^= self.next_bit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_descramble_round_trip() {
        let data: Vec<u8> = (0..500).map(|i| ((i * 7) % 2) as u8).collect();
        let mut scrambled = data.clone();
        Scrambler::new(0x5D).process(&mut scrambled);
        assert_ne!(scrambled, data, "scrambler must change the data");
        Scrambler::new(0x5D).process(&mut scrambled);
        assert_eq!(scrambled, data);
    }

    #[test]
    fn sequence_matches_standard_period() {
        // The 802.11 scrambler sequence has period 127.
        let mut s = Scrambler::new(0x7F);
        let first: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        assert_eq!(first, second);
        // And it is balanced-ish: 64 ones per period for the all-ones seed.
        assert_eq!(first.iter().filter(|&&b| b == 1).count(), 64);
    }

    #[test]
    fn known_prefix_for_all_ones_seed() {
        // IEEE 802.11-2012 example: seed 1111111 produces
        // 00001110 11110010 11001001 ...
        let mut s = Scrambler::new(0x7F);
        let bits: Vec<u8> = (0..24).map(|_| s.next_bit()).collect();
        let expect = [
            0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0, 0, 1,
        ];
        assert_eq!(&bits[..], &expect[..]);
    }

    #[test]
    fn whitens_constant_input() {
        let mut zeros = vec![0u8; 1270];
        Scrambler::new(0x24).process(&mut zeros);
        let ones = zeros.iter().filter(|&&b| b == 1).count();
        // Should be close to half.
        assert!(
            (500..770).contains(&ones),
            "poor whitening: {ones}/1270 ones"
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_seed_rejected() {
        let _ = Scrambler::new(0x80); // 0x80 & 0x7F == 0
    }
}
