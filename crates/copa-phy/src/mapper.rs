//! Gray-coded constellation mapping and hard-decision demapping.
//!
//! Square QAM factorizes into two independent Gray-coded PAM axes: the
//! first half of a symbol's bits selects the I level, the second half the
//! Q level. Gray coding makes adjacent levels differ in one bit, which is
//! the assumption behind the `(4/log2 M)(1 - 1/sqrt M) Q(...)` uncoded-BER
//! approximations in [`crate::modulation`].

use crate::modulation::Modulation;
use copa_num::complex::C64;

/// Maps/demaps symbols of one modulation.
#[derive(Clone, Debug)]
pub struct Mapper {
    modulation: Modulation,
    /// Ascending per-axis amplitude levels (unit *symbol* energy overall).
    levels: Vec<f64>,
    bits_per_axis: usize,
}

impl Mapper {
    /// Builds the mapper for a modulation.
    pub fn new(modulation: Modulation) -> Self {
        let levels = modulation.pam_levels();
        let bits_per_axis = match modulation {
            Modulation::Bpsk => 1,
            _ => modulation.bits_per_symbol() as usize / 2,
        };
        Self {
            modulation,
            levels,
            bits_per_axis,
        }
    }

    /// The modulation this mapper implements.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// Bits consumed per complex symbol.
    pub fn bits_per_symbol(&self) -> usize {
        self.modulation.bits_per_symbol() as usize
    }

    fn gray(i: usize) -> usize {
        i ^ (i >> 1)
    }

    fn gray_inverse(mut g: usize) -> usize {
        let mut i = g;
        while g > 0 {
            g >>= 1;
            i ^= g;
        }
        i
    }

    /// Level for a per-axis bit group.
    fn axis_map(&self, bits: &[u8]) -> f64 {
        let mut v = 0usize;
        for &b in bits {
            v = (v << 1) | b as usize;
        }
        self.levels[Self::gray_inverse(v)]
    }

    /// Nearest-level hard decision back to the per-axis bit group.
    fn axis_demap(&self, x: f64, out: &mut Vec<u8>) {
        let mut best = 0usize;
        let mut best_d = f64::MAX;
        for (i, &l) in self.levels.iter().enumerate() {
            let d = (x - l).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let g = Self::gray(best);
        for k in (0..self.bits_per_axis).rev() {
            out.push(((g >> k) & 1) as u8);
        }
    }

    /// Maps a bit slice (`bits_per_symbol` bits) to one complex symbol.
    pub fn map_symbol(&self, bits: &[u8]) -> C64 {
        assert_eq!(bits.len(), self.bits_per_symbol(), "bit group size");
        match self.modulation {
            Modulation::Bpsk => C64::real(if bits[0] == 1 { 1.0 } else { -1.0 }),
            _ => {
                let (i_bits, q_bits) = bits.split_at(self.bits_per_axis);
                C64::new(self.axis_map(i_bits), self.axis_map(q_bits))
            }
        }
    }

    /// Hard-decision demaps one received symbol back to bits.
    pub fn demap_symbol(&self, y: C64, out: &mut Vec<u8>) {
        match self.modulation {
            Modulation::Bpsk => out.push((y.re >= 0.0) as u8),
            _ => {
                self.axis_demap(y.re, out);
                self.axis_demap(y.im, out);
            }
        }
    }

    /// Maps a whole bit stream (`bits.len()` divisible by bits/symbol).
    pub fn map(&self, bits: &[u8]) -> Vec<C64> {
        assert_eq!(bits.len() % self.bits_per_symbol(), 0);
        bits.chunks(self.bits_per_symbol())
            .map(|c| self.map_symbol(c))
            .collect()
    }

    /// Demaps a whole symbol stream.
    pub fn demap(&self, symbols: &[C64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(symbols.len() * self.bits_per_symbol());
        for &y in symbols {
            self.demap_symbol(y, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copa_num::SimRng;

    #[test]
    fn map_demap_round_trip() {
        let mut rng = SimRng::seed_from(1);
        for m in Modulation::ALL {
            let mapper = Mapper::new(m);
            let n = mapper.bits_per_symbol() * 100;
            let bits: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 1) as u8).collect();
            let symbols = mapper.map(&bits);
            assert_eq!(symbols.len(), 100);
            assert_eq!(mapper.demap(&symbols), bits, "{m}");
        }
    }

    #[test]
    fn symbols_have_unit_average_energy() {
        let mut rng = SimRng::seed_from(2);
        for m in Modulation::ALL {
            let mapper = Mapper::new(m);
            let n = mapper.bits_per_symbol() * 4000;
            let bits: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 1) as u8).collect();
            let symbols = mapper.map(&bits);
            let e: f64 = symbols.iter().map(|s| s.norm_sqr()).sum::<f64>() / symbols.len() as f64;
            assert!((e - 1.0).abs() < 0.05, "{m}: energy {e}");
        }
    }

    #[test]
    fn gray_adjacent_levels_differ_by_one_bit() {
        for m in [Modulation::Qam16, Modulation::Qam64] {
            let mapper = Mapper::new(m);
            let bpa = mapper.bits_per_axis;
            // For each adjacent level pair, the gray codes differ in 1 bit.
            for i in 0..mapper.levels.len() - 1 {
                let a = Mapper::gray(i);
                let b = Mapper::gray(i + 1);
                assert_eq!((a ^ b).count_ones(), 1, "{m} levels {i},{}", i + 1);
                assert!(a < (1 << bpa) && b < (1 << bpa));
            }
        }
    }

    #[test]
    fn gray_inverse_inverts() {
        for i in 0..64 {
            assert_eq!(Mapper::gray_inverse(Mapper::gray(i)), i);
        }
    }

    #[test]
    fn small_noise_does_not_flip_bits() {
        let mapper = Mapper::new(Modulation::Qam64);
        let bits = [1, 0, 1, 1, 0, 1];
        let s = mapper.map_symbol(&bits);
        let min_dist = 2.0 / 42.0f64.sqrt(); // adjacent 64-QAM levels
        let noisy = s + C64::new(min_dist * 0.4, -min_dist * 0.4);
        let mut out = Vec::new();
        mapper.demap_symbol(noisy, &mut out);
        assert_eq!(out, bits);
    }

    #[test]
    fn bpsk_sign_decision() {
        let mapper = Mapper::new(Modulation::Bpsk);
        let mut out = Vec::new();
        mapper.demap_symbol(C64::new(0.3, 2.0), &mut out);
        mapper.demap_symbol(C64::new(-0.1, -5.0), &mut out);
        assert_eq!(out, vec![1, 0]);
    }
}
