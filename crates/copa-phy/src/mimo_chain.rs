//! Bit-true multi-stream (MIMO) transmission.
//!
//! Extends the single-stream baseband [`crate::baseband::Chain`] to spatial
//! multiplexing the way 802.11n does with equal modulation per stream: one
//! scrambler + encoder feeds a round-robin *stream parser*, each spatial
//! stream gets its own interleaver and Gray mapper, and the receiver
//! zero-forces the per-subcarrier effective channel (`H x precoder`) before
//! per-stream soft demapping and a single soft Viterbi pass.
//!
//! Together with `copa-precoding` this closes the loop: actual bits travel
//! through an actual beamformed 2x4 MIMO channel, validating end to end the
//! spatial-multiplexing assumptions behind every throughput number in the
//! evaluation.

use crate::coding::{encode, CONSTRAINT_LENGTH};
use crate::interleaver::Interleaver;
use crate::mapper::Mapper;
use crate::mcs::Mcs;
use crate::ofdm::DATA_SUBCARRIERS;
use crate::scrambler::Scrambler;
use crate::soft::{soft_demap, soft_viterbi_decode};
use copa_num::complex::C64;
use copa_num::matrix::CMat;
use copa_num::solve::inverse_loaded;

/// A modulated MIMO frame.
#[derive(Clone, Debug)]
pub struct MimoFrame {
    /// `symbols[t][k][s]`: OFDM symbol `t`, spatial stream `k`,
    /// subcarrier `s`.
    pub symbols: Vec<Vec<Vec<C64>>>,
    /// Payload bits carried.
    pub payload_bits: usize,
}

/// The multi-stream bit pipeline.
#[derive(Clone, Debug)]
pub struct MimoChain {
    mcs: Mcs,
    streams: usize,
    mapper: Mapper,
    interleaver: Interleaver,
    scrambler_seed: u8,
    /// Stream-parser block size: `max(N_BPSC / 2, 1)` bits round-robin.
    parse_block: usize,
}

impl MimoChain {
    /// Builds an equal-modulation chain with `streams` spatial streams.
    pub fn new(mcs: Mcs, streams: usize) -> Self {
        assert!(streams >= 1 && streams <= 4);
        let bpsc = mcs.modulation.bits_per_symbol() as usize;
        Self {
            mcs,
            streams,
            mapper: Mapper::new(mcs.modulation),
            interleaver: Interleaver::new(mcs.modulation),
            scrambler_seed: 0x5D,
            parse_block: (bpsc / 2).max(1),
        }
    }

    /// Spatial streams.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Payload bits that fit in `n_symbols` OFDM symbols across all streams.
    pub fn payload_capacity(&self, n_symbols: usize) -> usize {
        let coded = n_symbols * self.streams * self.interleaver.block_len();
        let (k, n) = self.mcs.rate.ratio();
        (coded * k / n).saturating_sub(CONSTRAINT_LENGTH - 1)
    }

    /// Round-robin stream parser (802.11n 22.3.10.6, equal modulation):
    /// `parse_block`-bit groups go to streams 0, 1, ... cyclically.
    fn stream_parse(&self, coded: &[u8]) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::with_capacity(coded.len() / self.streams + 8); self.streams];
        for (g, chunk) in coded.chunks(self.parse_block).enumerate() {
            out[g % self.streams].extend_from_slice(chunk);
        }
        out
    }

    /// Inverse of [`stream_parse`] for per-stream LLRs.
    ///
    /// [`stream_parse`]: MimoChain::stream_parse
    fn stream_merge(&self, per_stream: &[Vec<f64>], total: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(total);
        let mut cursors = vec![0usize; self.streams];
        let mut g = 0usize;
        while out.len() < total {
            let k = g % self.streams;
            let take = self.parse_block.min(total - out.len());
            for i in 0..take {
                out.push(per_stream[k][cursors[k] + i]);
            }
            cursors[k] += take;
            g += 1;
        }
        out
    }

    /// Encodes payload bits into per-stream, per-subcarrier symbols.
    pub fn transmit(&self, payload: &[u8]) -> MimoFrame {
        let mut bits = payload.to_vec();
        Scrambler::new(self.scrambler_seed).process(&mut bits);
        let mut coded = encode(&bits, self.mcs.rate);
        // Pad so every stream fills whole OFDM symbols, equally.
        let per_symbol = self.streams * self.interleaver.block_len();
        let pad = (per_symbol - coded.len() % per_symbol) % per_symbol;
        coded.extend(std::iter::repeat_n(0u8, pad));
        let stream_bits = self.stream_parse(&coded);

        let n_symbols = stream_bits[0].len() / self.interleaver.block_len();
        let mut symbols = vec![vec![Vec::new(); self.streams]; n_symbols];
        for (k, bits_k) in stream_bits.iter().enumerate() {
            for (t, chunk) in bits_k.chunks(self.interleaver.block_len()).enumerate() {
                symbols[t][k] = self.mapper.map(&self.interleaver.interleave(chunk));
            }
        }
        MimoFrame {
            symbols,
            payload_bits: payload.len(),
        }
    }

    /// Receives raw antenna observations.
    ///
    /// `received[t][s]` is the rx-antenna vector on OFDM symbol `t`,
    /// subcarrier `s`; `effective[s]` the effective channel `H_s P_s
    /// diag(sqrt(p))` (rx x streams); `noise_var` the per-antenna complex
    /// noise variance. Zero-forcing separates the streams; per-stream
    /// post-ZF noise (`noise_var * [(Q^H Q)^{-1}]_kk`) weights the LLRs.
    pub fn receive(
        &self,
        received: &[Vec<CMat>],
        effective: &[CMat],
        noise_var: f64,
        payload_bits: usize,
    ) -> Vec<u8> {
        assert_eq!(effective.len(), DATA_SUBCARRIERS);
        // Precompute per-subcarrier pseudo-inverse and post-ZF noise.
        let mut pinv = Vec::with_capacity(DATA_SUBCARRIERS);
        let mut zf_noise = Vec::with_capacity(DATA_SUBCARRIERS);
        for q in effective {
            assert_eq!(q.cols(), self.streams);
            let gram = q.gram();
            let gram_inv = inverse_loaded(&gram, noise_var.max(1e-18) * 1e-6);
            pinv.push(gram_inv.matmul(&q.hermitian()));
            zf_noise.push(
                (0..self.streams)
                    .map(|k| noise_var * gram_inv[(k, k)].re.max(1e-30))
                    .collect::<Vec<f64>>(),
            );
        }

        // Per-stream LLR pipelines.
        let block = self.interleaver.block_len();
        let mut per_stream_llrs: Vec<Vec<f64>> = vec![Vec::new(); self.streams];
        for obs in received {
            assert_eq!(obs.len(), DATA_SUBCARRIERS);
            let mut sym_llrs: Vec<Vec<f64>> = vec![Vec::with_capacity(block); self.streams];
            for (s, y) in obs.iter().enumerate() {
                let xhat = pinv[s].matmul(y); // streams x 1
                for k in 0..self.streams {
                    soft_demap(&self.mapper, xhat[(k, 0)], zf_noise[s][k], &mut sym_llrs[k]);
                }
            }
            for k in 0..self.streams {
                let mut deint = vec![0.0; block];
                for (j, llr) in sym_llrs[k].iter().enumerate() {
                    deint[self.interleaver.deinterleave_index(j)] = *llr;
                }
                per_stream_llrs[k].extend(deint);
            }
        }

        let coded_len = encode(&vec![0u8; payload_bits], self.mcs.rate).len();
        let llrs = self.stream_merge(&per_stream_llrs, coded_len);
        let mut bits = soft_viterbi_decode(&llrs, payload_bits, self.mcs.rate);
        Scrambler::new(self.scrambler_seed).process(&mut bits);
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copa_num::SimRng;

    fn random_bits(rng: &mut SimRng, n: usize) -> Vec<u8> {
        (0..n).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    /// Sends a frame through per-subcarrier effective channels with AWGN and
    /// returns raw antenna observations.
    fn through_channel(
        frame: &MimoFrame,
        effective: &[CMat],
        noise_var: f64,
        rng: &mut SimRng,
    ) -> Vec<Vec<CMat>> {
        frame
            .symbols
            .iter()
            .map(|per_stream| {
                (0..DATA_SUBCARRIERS)
                    .map(|s| {
                        let q = &effective[s];
                        let x = CMat::from_fn(q.cols(), 1, |k, _| per_stream[k][s]);
                        let mut y = q.matmul(&x);
                        for r in 0..y.rows() {
                            y[(r, 0)] += rng.randc().scale(noise_var.sqrt());
                        }
                        y
                    })
                    .collect()
            })
            .collect()
    }

    fn random_effective(rng: &mut SimRng, rx: usize, streams: usize) -> Vec<CMat> {
        // Well-conditioned effective channels (unit-ish singular values).
        (0..DATA_SUBCARRIERS)
            .map(|_| {
                let a = CMat::from_fn(rx, streams, |_, _| rng.randc());
                // Normalize columns to unit norm so per-stream SNR ~ 1/noise.
                CMat::from_fn(rx, streams, |i, j| {
                    let n: f64 = (0..rx).map(|r| a[(r, j)].norm_sqr()).sum::<f64>().sqrt();
                    a[(i, j)].scale(1.0 / n.max(1e-12))
                })
            })
            .collect()
    }

    #[test]
    fn two_streams_round_trip_cleanly() {
        let mut rng = SimRng::seed_from(1);
        for mcs in [Mcs::TABLE[0], Mcs::TABLE[4]] {
            let chain = MimoChain::new(mcs, 2);
            let payload = random_bits(&mut rng, chain.payload_capacity(4));
            let frame = chain.transmit(&payload);
            let eff = random_effective(&mut rng, 2, 2);
            let rx = through_channel(&frame, &eff, 1e-6, &mut rng);
            let decoded = chain.receive(&rx, &eff, 1e-6, payload.len());
            assert_eq!(decoded, payload, "{mcs} x2 streams");
        }
    }

    #[test]
    fn single_stream_reduces_to_baseline_capacity() {
        let chain1 = MimoChain::new(Mcs::TABLE[3], 1);
        let base = crate::baseband::Chain::new(Mcs::TABLE[3]);
        assert_eq!(chain1.payload_capacity(6), base.payload_capacity(6));
        // Two streams carry ~2x per symbol period.
        let chain2 = MimoChain::new(Mcs::TABLE[3], 2);
        let c1 = chain1.payload_capacity(6) as f64;
        let c2 = chain2.payload_capacity(6) as f64;
        assert!(
            (c2 / c1 - 2.0).abs() < 0.05,
            "2 streams should ~double capacity"
        );
    }

    #[test]
    fn stream_parse_merge_inverse() {
        let chain = MimoChain::new(Mcs::TABLE[7], 2); // 64-QAM: 3-bit parse blocks
        let coded: Vec<u8> = (0..624).map(|i| (i % 2) as u8).collect();
        let parsed = chain.stream_parse(&coded);
        // Rebuild via merge using identity LLRs encoding positions.
        let as_llrs: Vec<Vec<f64>> = parsed
            .iter()
            .map(|v| v.iter().map(|&b| b as f64).collect())
            .collect();
        let merged = chain.stream_merge(&as_llrs, coded.len());
        let back: Vec<u8> = merged.iter().map(|&x| x as u8).collect();
        assert_eq!(back, coded);
    }

    #[test]
    fn noisy_mimo_link_fails_then_recovers_with_more_rx_antennas() {
        // 2 streams into 2 rx antennas at moderate noise struggles more
        // than 2 streams into 4 rx antennas (diversity + better ZF
        // conditioning) -- aggregated over frames.
        let mut rng = SimRng::seed_from(5);
        let chain = MimoChain::new(Mcs::TABLE[4], 2);
        let noise = copa_num::special::db_to_lin(-11.0);
        let mut errs2 = 0usize;
        let mut errs4 = 0usize;
        for _ in 0..6 {
            let payload = random_bits(&mut rng, chain.payload_capacity(4));
            let frame = chain.transmit(&payload);
            let eff2 = random_effective(&mut rng, 2, 2);
            let rx2 = through_channel(&frame, &eff2, noise, &mut rng);
            let d2 = chain.receive(&rx2, &eff2, noise, payload.len());
            errs2 += d2.iter().zip(&payload).filter(|(a, b)| a != b).count();
            let eff4 = random_effective(&mut rng, 4, 2);
            let rx4 = through_channel(&frame, &eff4, noise, &mut rng);
            let d4 = chain.receive(&rx4, &eff4, noise, payload.len());
            errs4 += d4.iter().zip(&payload).filter(|(a, b)| a != b).count();
        }
        assert!(
            errs4 <= errs2,
            "more rx antennas should not hurt: {errs4} vs {errs2}"
        );
    }

    #[test]
    fn end_to_end_with_real_precoder_and_channel() {
        // The capstone: bits through a beamformed 2x4 MIMO channel drawn
        // from the actual channel model.
        use copa_num::svd::svd;
        let mut rng = SimRng::seed_from(9);
        let chain = MimoChain::new(Mcs::TABLE[3], 2);
        let payload = random_bits(&mut rng, chain.payload_capacity(4));
        let frame = chain.transmit(&payload);

        // A 2x4 channel at high SNR; SVD beamforming precoder per subcarrier.
        let h: Vec<CMat> = (0..DATA_SUBCARRIERS)
            .map(|_| CMat::from_fn(2, 4, |_, _| rng.randc()))
            .collect();
        let effective: Vec<CMat> = h
            .iter()
            .map(|hs| {
                let d = svd(hs);
                let v2 = d.v.select_columns(&[0, 1]);
                hs.matmul(&v2) // rx x streams
            })
            .collect();
        let noise = 1e-4;
        let rx = through_channel(&frame, &effective, noise, &mut rng);
        let decoded = chain.receive(&rx, &effective, noise, payload.len());
        assert_eq!(
            decoded, payload,
            "beamformed MIMO link should decode cleanly"
        );
    }
}
