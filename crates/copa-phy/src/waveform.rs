//! Bit-true time-domain waveform path: framing, sync, and front-end
//! impairments.
//!
//! Everything else in this crate works at the per-subcarrier symbol level,
//! where the channel is a complex gain and sync is assumed perfect. This
//! module builds the actual 20 MHz sample stream -- IFFT + cyclic prefix per
//! OFDM symbol behind a known preamble -- and the receiver machinery a real
//! front end needs before any of the symbol-level model applies:
//!
//! * a two-repetition preamble (`2 x 80` samples) for detection;
//! * coarse timing + CFO estimation from the repeated-symbol
//!   autocorrelation at lag 80 (unambiguous to +-125 kHz);
//! * fine timing from a normalized matched filter against the known
//!   preamble, locking to the *earliest* offset within 90% of the peak so
//!   multipath pulls timing toward the first strong tap, not the strongest;
//! * least-squares channel estimation from the preamble and zero-forcing
//!   equalization, with optional CP-based residual phase tracking.
//!
//! Injectable impairments -- timing offset, residual sync error, CFO, SFO --
//! are exactly the effects the analytic FER chain in [`crate::link`] cannot
//! see; `copa-sim`'s waveform validator measures what they cost.
//!
//! All per-frame entry points are `_into` variants over caller-owned
//! scratch: a warmed Monte-Carlo loop never touches the allocator.

use crate::baseband::CP_SAMPLES;
use crate::ofdm::{data_subcarrier_bins, BANDWIDTH_HZ, DATA_SUBCARRIERS, FFT_SIZE};
use copa_num::complex::{C64, ZERO};
use copa_num::fft::{fft_in_place, ifft_in_place};
use copa_num::SimRng;
use std::f64::consts::PI;

/// Samples per OFDM symbol including the cyclic prefix.
pub const SYMBOL_SAMPLES: usize = FFT_SIZE + CP_SAMPLES;

/// Identical preamble repetitions (the autocorrelation sync needs >= 2).
pub const PREAMBLE_REPEATS: usize = 2;

/// Total preamble length in samples.
pub const PREAMBLE_SAMPLES: usize = PREAMBLE_REPEATS * SYMBOL_SAMPLES;

/// Sample period at the 20 MHz channel bandwidth, in seconds.
pub const SAMPLE_PERIOD_S: f64 = 1.0 / BANDWIDTH_HZ;

/// Largest CFO the lag-80 autocorrelation estimator resolves unambiguously
/// (`1 / (2 * 80 * Ts)` = 125 kHz; ~52 ppm at 2.4 GHz, beyond any sane
/// oscillator pair).
pub fn max_cfo_hz() -> f64 {
    1.0 / (2.0 * SYMBOL_SAMPLES as f64 * SAMPLE_PERIOD_S)
}

/// The known sync preamble: a fixed QPSK loading of the 52 data subcarriers,
/// transmitted as [`PREAMBLE_REPEATS`] identical CP'd OFDM symbols.
#[derive(Clone, Debug)]
pub struct Preamble {
    /// Per-data-subcarrier QPSK symbols (unit energy each).
    freq: Vec<C64>,
    /// The full time-domain preamble ([`PREAMBLE_SAMPLES`] samples).
    time: Vec<C64>,
    /// Energy of `time` (cached for the normalized matched filter).
    energy: f64,
}

impl Preamble {
    /// The fixed preamble every transmitter in the simulation uses.
    pub fn standard() -> Self {
        Self::from_seed(0x11AD_C0FA)
    }

    /// A deterministic QPSK preamble drawn from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let a = std::f64::consts::FRAC_1_SQRT_2;
        let freq: Vec<C64> = (0..DATA_SUBCARRIERS)
            .map(|_| {
                let b = rng.next_u64();
                C64::new(
                    if b & 1 == 1 { a } else { -a },
                    if b & 2 == 2 { a } else { -a },
                )
            })
            .collect();
        let bins = data_subcarrier_bins();
        let mut grid = vec![ZERO; FFT_SIZE];
        for (&bin, &x) in bins.iter().zip(&freq) {
            grid[bin] = x;
        }
        ifft_in_place(&mut grid);
        let mut time = Vec::with_capacity(PREAMBLE_SAMPLES);
        for _ in 0..PREAMBLE_REPEATS {
            time.extend_from_slice(&grid[FFT_SIZE - CP_SAMPLES..]);
            time.extend_from_slice(&grid);
        }
        let energy = time.iter().map(|z| z.norm_sqr()).sum();
        Self { freq, time, energy }
    }

    /// The per-data-subcarrier loading.
    pub fn freq(&self) -> &[C64] {
        &self.freq
    }

    /// The time-domain samples.
    pub fn time(&self) -> &[C64] {
        &self.time
    }
}

/// Front-end impairment and receiver-behavior knobs for one waveform run.
#[derive(Clone, Copy, Debug)]
pub struct WaveformImpairments {
    /// True frame start: samples of leading silence before the preamble.
    pub timing_offset: usize,
    /// Sync search window in samples; must cover `timing_offset`.
    pub search: usize,
    /// Samples added to the detected start (residual sync error; positive
    /// = late, eating into the next symbol's samples).
    pub residual_timing: i64,
    /// Carrier frequency offset between the oscillators, Hz.
    pub cfo_hz: f64,
    /// Sampling-clock offset, parts per million.
    pub sfo_ppm: f64,
    /// Run the autocorrelation CFO estimator and de-rotate before demod.
    pub correct_cfo: bool,
    /// Track residual per-symbol common phase from the cyclic prefix.
    pub track_phase: bool,
    /// Skip sync entirely and use the true timing (equivalence tests).
    pub oracle_timing: bool,
}

impl WaveformImpairments {
    /// A benign receiver: unknown-but-recoverable timing, no oscillator
    /// offsets, estimators on.
    pub fn clean() -> Self {
        Self {
            timing_offset: 12,
            search: 48,
            residual_timing: 0,
            cfo_hz: 0.0,
            sfo_ppm: 0.0,
            correct_cfo: true,
            track_phase: false,
            oracle_timing: false,
        }
    }
}

/// Reusable working buffers for the waveform kernels: one scratch serves
/// modulation, channel estimation, and demodulation, allocation-free once
/// warmed.
#[derive(Clone, Debug, Default)]
pub struct WaveformScratch {
    /// 64-point FFT working grid.
    grid: Vec<C64>,
    /// Cached data-subcarrier bin map.
    bins: Vec<usize>,
}

impl WaveformScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_bins(&mut self) {
        if self.bins.is_empty() {
            self.bins = data_subcarrier_bins();
        }
    }
}

/// Result of [`synchronize`].
#[derive(Clone, Copy, Debug)]
pub struct SyncResult {
    /// Detected frame start (index of the first preamble sample).
    pub start: usize,
    /// Estimated CFO in Hz (zero when estimation is disabled).
    pub cfo_hz: f64,
    /// Peak normalized matched-filter metric (1.0 = perfect match).
    pub metric: f64,
}

// alloc-free: begin waveform_frame (kernel -- caller-owned scratch)
/// Builds the time-domain frame: preamble followed by one CP'd IFFT symbol
/// per 52-subcarrier group of `symbols` (flat, as produced by
/// `Chain::transmit_into`). Clears and fills `out`
/// (`PREAMBLE_SAMPLES + n_symbols * SYMBOL_SAMPLES` samples).
pub fn modulate_frame_into(
    preamble: &Preamble,
    symbols: &[C64],
    scratch: &mut WaveformScratch,
    out: &mut Vec<C64>,
) {
    assert_eq!(symbols.len() % DATA_SUBCARRIERS, 0, "need whole symbols");
    scratch.ensure_bins();
    out.clear();
    out.extend_from_slice(&preamble.time);
    for sym in symbols.chunks(DATA_SUBCARRIERS) {
        scratch.grid.clear();
        scratch.grid.resize(FFT_SIZE, ZERO);
        for (&bin, &x) in scratch.bins.iter().zip(sym) {
            scratch.grid[bin] = x;
        }
        ifft_in_place(&mut scratch.grid);
        out.extend_from_slice(&scratch.grid[FFT_SIZE - CP_SAMPLES..]);
        out.extend_from_slice(&scratch.grid);
    }
}

/// Rotates the stream by a carrier frequency offset of `cfo_hz`
/// (`x[n] *= e^{j 2 pi f n Ts}`), in place.
pub fn apply_cfo(samples: &mut [C64], cfo_hz: f64) {
    if cfo_hz == 0.0 {
        return;
    }
    let step = C64::cis(2.0 * PI * cfo_hz * SAMPLE_PERIOD_S);
    let mut rot = C64::real(1.0);
    for v in samples.iter_mut() {
        *v = *v * rot;
        rot *= step;
    }
}

/// Resamples the stream as a receiver whose ADC runs `sfo_ppm` ppm fast
/// would see it (linear interpolation at instants `n * (1 + ppm * 1e-6)`).
/// The output is one or two samples shorter than the input.
pub fn resample_sfo_into(samples: &[C64], sfo_ppm: f64, out: &mut Vec<C64>) {
    out.clear();
    if sfo_ppm == 0.0 {
        out.extend_from_slice(samples);
        return;
    }
    let ratio = 1.0 + sfo_ppm * 1e-6;
    let n = samples.len();
    let mut i = 0usize;
    loop {
        let t = i as f64 * ratio;
        let k = t as usize;
        if k + 1 >= n {
            break;
        }
        let frac = t - k as f64;
        out.push(samples[k].scale(1.0 - frac) + samples[k + 1].scale(frac));
        i += 1;
    }
}

/// Timing + CFO acquisition. Searches frame starts `0..=search`, estimates
/// the CFO from the lag-80 autocorrelation at the coarse peak, writes the
/// de-rotated stream into `corrected`, then fine-tunes timing with the
/// normalized matched filter (earliest offset within 90% of the peak).
///
/// At zero noise over a flat channel the returned `start` equals the true
/// offset exactly and `metric` is 1 (Cauchy-Schwarz equality).
///
/// # Panics
/// Panics if `rx` is shorter than `search + PREAMBLE_SAMPLES`.
pub fn synchronize(
    rx: &[C64],
    preamble: &Preamble,
    search: usize,
    correct_cfo: bool,
    corrected: &mut Vec<C64>,
) -> SyncResult {
    assert!(
        rx.len() >= search + PREAMBLE_SAMPLES,
        "rx shorter than the sync search window"
    );
    // Coarse: the two preamble repetitions make the lag-80 autocorrelation
    // peak at the frame start, CFO-invariant in magnitude.
    let mut best_acc = ZERO;
    let mut best_metric = -1.0;
    for d in 0..=search {
        let mut acc = ZERO;
        let mut energy = 0.0;
        for n in 0..SYMBOL_SAMPLES {
            acc += rx[d + n].conj() * rx[d + SYMBOL_SAMPLES + n];
        }
        for n in 0..PREAMBLE_SAMPLES {
            energy += rx[d + n].norm_sqr();
        }
        if energy <= 0.0 {
            continue;
        }
        let metric = acc.norm_sqr() / (energy * energy);
        if metric > best_metric {
            best_metric = metric;
            best_acc = acc;
        }
    }
    // The repetition phase advance is `2 pi f * 80 Ts`.
    let cfo_hz = if correct_cfo {
        best_acc.arg() / (2.0 * PI * SYMBOL_SAMPLES as f64 * SAMPLE_PERIOD_S)
    } else {
        0.0
    };
    corrected.clear();
    corrected.extend_from_slice(rx);
    if cfo_hz != 0.0 {
        let step = C64::cis(-2.0 * PI * cfo_hz * SAMPLE_PERIOD_S);
        let mut rot = C64::real(1.0);
        for v in corrected.iter_mut() {
            *v = *v * rot;
            rot *= step;
        }
    }
    // Fine: normalized cross-correlation against the known preamble.
    let fine = |d: usize| {
        let mut acc = ZERO;
        let mut energy = 0.0;
        for (n, &p) in preamble.time.iter().enumerate() {
            let r = corrected[d + n];
            acc += p.conj() * r;
            energy += r.norm_sqr();
        }
        if energy <= 0.0 {
            0.0
        } else {
            acc.norm_sqr() / (energy * preamble.energy)
        }
    };
    let mut peak = -1.0;
    for d in 0..=search {
        let m = fine(d);
        if m > peak {
            peak = m;
        }
    }
    let mut start = 0usize;
    for d in 0..=search {
        if fine(d) >= 0.9 * peak {
            start = d;
            break;
        }
    }
    SyncResult {
        start,
        cfo_hz,
        metric: peak,
    }
}

/// Least-squares channel estimate from the preamble repetitions: FFTs each
/// repetition at the detected timing, averages, divides by the known
/// loading. Fills `h_est` with the 52 per-data-subcarrier gains.
///
/// # Panics
/// Panics if a preamble window falls outside `rc`.
pub fn estimate_channel_into(
    rc: &[C64],
    start: usize,
    preamble: &Preamble,
    scratch: &mut WaveformScratch,
    h_est: &mut Vec<C64>,
) {
    scratch.ensure_bins();
    h_est.clear();
    h_est.resize(DATA_SUBCARRIERS, ZERO);
    for rep in 0..PREAMBLE_REPEATS {
        let w = start + rep * SYMBOL_SAMPLES + CP_SAMPLES;
        assert!(w + FFT_SIZE <= rc.len(), "preamble window out of bounds");
        scratch.grid.clear();
        scratch.grid.extend_from_slice(&rc[w..w + FFT_SIZE]);
        fft_in_place(&mut scratch.grid);
        for (h, &bin) in h_est.iter_mut().zip(&scratch.bins) {
            *h += scratch.grid[bin];
        }
    }
    let inv = 1.0 / PREAMBLE_REPEATS as f64;
    for (h, &p) in h_est.iter_mut().zip(&preamble.freq) {
        *h = h.scale(inv) / p;
    }
}

/// Demodulates and zero-forcing-equalizes `n_symbols` data symbols that
/// follow the preamble at `start`, appending 52 equalized symbols each to
/// `out` (cleared first). With `track_phase`, the common phase drift of
/// each symbol (CP-vs-tail correlation, e.g. residual CFO) is removed
/// relative to the preamble's phase reference.
///
/// # Panics
/// Panics if a data window falls outside `rc`.
pub fn demodulate_data_into(
    rc: &[C64],
    start: usize,
    n_symbols: usize,
    h_est: &[C64],
    track_phase: bool,
    scratch: &mut WaveformScratch,
    out: &mut Vec<C64>,
) {
    assert_eq!(h_est.len(), DATA_SUBCARRIERS, "need all subcarrier gains");
    scratch.ensure_bins();
    out.clear();
    // Phase reference: midpoint of the two preamble FFT-window centers.
    let ref_center =
        start as f64 + CP_SAMPLES as f64 + FFT_SIZE as f64 / 2.0 + SYMBOL_SAMPLES as f64 / 2.0;
    for t in 0..n_symbols {
        let ws = start + PREAMBLE_SAMPLES + t * SYMBOL_SAMPLES;
        let w = ws + CP_SAMPLES;
        assert!(w + FFT_SIZE <= rc.len(), "data window out of bounds");
        let derot = if track_phase {
            // The CP repeats the symbol tail FFT_SIZE samples later: their
            // correlation angle is the per-64-sample common phase drift.
            let mut acc = ZERO;
            for n in 0..CP_SAMPLES {
                acc += rc[ws + n].conj() * rc[ws + FFT_SIZE + n];
            }
            let per_sample = acc.arg() / FFT_SIZE as f64;
            let center = w as f64 + FFT_SIZE as f64 / 2.0;
            C64::cis(-per_sample * (center - ref_center))
        } else {
            C64::real(1.0)
        };
        scratch.grid.clear();
        scratch.grid.extend_from_slice(&rc[w..w + FFT_SIZE]);
        fft_in_place(&mut scratch.grid);
        for (k, &bin) in scratch.bins.iter().enumerate() {
            out.push(scratch.grid[bin] / h_est[k] * derot);
        }
    }
}
// alloc-free: end waveform_frame

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseband::ofdm_modulate;

    #[test]
    fn preamble_is_periodic_and_energetic() {
        let p = Preamble::standard();
        assert_eq!(p.time().len(), PREAMBLE_SAMPLES);
        for n in 0..SYMBOL_SAMPLES {
            let a = p.time()[n];
            let b = p.time()[n + SYMBOL_SAMPLES];
            assert!((a - b).abs() < 1e-15, "preamble halves differ at {n}");
        }
        // 52 unit-energy subcarriers spread over 64 samples, twice, with CP.
        let expect = 2.0
            * (DATA_SUBCARRIERS as f64 / FFT_SIZE as f64)
            * (SYMBOL_SAMPLES as f64 / FFT_SIZE as f64);
        assert!(
            (p.energy / expect - 1.0).abs() < 0.35,
            "preamble energy {} vs {expect}",
            p.energy
        );
    }

    #[test]
    fn modulate_frame_matches_per_symbol_modulator() {
        let mut rng = SimRng::seed_from(11);
        let p = Preamble::standard();
        let n_sym = 3;
        let symbols: Vec<C64> = (0..n_sym * DATA_SUBCARRIERS).map(|_| rng.randc()).collect();
        let mut scratch = WaveformScratch::new();
        let mut frame = Vec::new();
        modulate_frame_into(&p, &symbols, &mut scratch, &mut frame);
        assert_eq!(frame.len(), PREAMBLE_SAMPLES + n_sym * SYMBOL_SAMPLES);
        assert_eq!(&frame[..PREAMBLE_SAMPLES], p.time());
        for t in 0..n_sym {
            let per = ofdm_modulate(&symbols[t * DATA_SUBCARRIERS..(t + 1) * DATA_SUBCARRIERS]);
            let got = &frame[PREAMBLE_SAMPLES + t * SYMBOL_SAMPLES..][..SYMBOL_SAMPLES];
            for (a, b) in per.iter().zip(got) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn sync_recovers_offset_and_cfo_at_zero_noise() {
        let mut rng = SimRng::seed_from(12);
        let p = Preamble::standard();
        let symbols: Vec<C64> = (0..2 * DATA_SUBCARRIERS).map(|_| rng.randc()).collect();
        let mut scratch = WaveformScratch::new();
        let mut frame = Vec::new();
        modulate_frame_into(&p, &symbols, &mut scratch, &mut frame);
        for &(offset, cfo) in &[(0usize, 0.0), (5, 0.0), (17, 9.3e3), (40, -21.7e3)] {
            let mut rx = vec![ZERO; offset];
            rx.extend_from_slice(&frame);
            rx.extend(std::iter::repeat_n(ZERO, 48));
            apply_cfo(&mut rx, cfo);
            let mut corrected = Vec::new();
            let res = synchronize(&rx, &p, 48, true, &mut corrected);
            assert_eq!(res.start, offset, "offset {offset} cfo {cfo}");
            assert!(
                (res.cfo_hz - cfo).abs() < 1.0,
                "cfo {cfo}: estimated {}",
                res.cfo_hz
            );
            assert!(res.metric > 0.999, "metric {}", res.metric);
        }
    }

    #[test]
    fn flat_channel_round_trip_through_sync_and_equalization() {
        let mut rng = SimRng::seed_from(13);
        let p = Preamble::standard();
        let n_sym = 4;
        let symbols: Vec<C64> = (0..n_sym * DATA_SUBCARRIERS).map(|_| rng.randc()).collect();
        let mut scratch = WaveformScratch::new();
        let mut frame = Vec::new();
        modulate_frame_into(&p, &symbols, &mut scratch, &mut frame);
        // Complex flat gain + timing offset + CFO.
        let gain = C64::new(0.6, -0.8);
        let offset = 23;
        let mut rx = vec![ZERO; offset];
        rx.extend(frame.iter().map(|&x| gain * x));
        rx.extend(std::iter::repeat_n(ZERO, 64));
        apply_cfo(&mut rx, 4.2e3);
        let mut corrected = Vec::new();
        let res = synchronize(&rx, &p, 48, true, &mut corrected);
        assert_eq!(res.start, offset);
        let mut h = Vec::new();
        estimate_channel_into(&corrected, res.start, &p, &mut scratch, &mut h);
        let mut eq = Vec::new();
        demodulate_data_into(
            &corrected,
            res.start,
            n_sym,
            &h,
            true,
            &mut scratch,
            &mut eq,
        );
        for (a, b) in symbols.iter().zip(&eq) {
            assert!((*a - *b).abs() < 1e-6, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn sfo_resampler_is_identity_at_zero_and_shrinks_otherwise() {
        let mut rng = SimRng::seed_from(14);
        let x: Vec<C64> = (0..400).map(|_| rng.randc()).collect();
        let mut y = Vec::new();
        resample_sfo_into(&x, 0.0, &mut y);
        assert_eq!(x.len(), y.len());
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
        }
        resample_sfo_into(&x, 200.0, &mut y);
        assert!(y.len() <= x.len() && y.len() >= x.len() - 2);
        // Small SFO keeps samples close to the originals early in the
        // stream and drifts later.
        let early = (y[5] - x[5]).abs();
        let late = (y[350] - x[350]).abs();
        assert!(
            early < late,
            "resampler drift not growing: {early} vs {late}"
        );
    }
}
