//! 802.11 modulations and their uncoded bit-error rates.
//!
//! The paper predicts throughput from measured SINR: "We use the measured
//! SINRs to calculate the uncoded BER [Halperin et al.] for each 802.11n
//! modulation". These are the standard Gray-coded M-QAM AWGN formulas.

use copa_num::complex::C64;
use copa_num::special::q_func;

/// The four 802.11n constellations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modulation {
    /// Binary phase-shift keying (1 bit/symbol).
    Bpsk,
    /// Quadrature phase-shift keying (2 bits/symbol).
    Qpsk,
    /// 16-point quadrature amplitude modulation (4 bits/symbol).
    Qam16,
    /// 64-point quadrature amplitude modulation (6 bits/symbol).
    Qam64,
}

impl Modulation {
    /// All modulations, lowest to highest order.
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Bits carried per subcarrier symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Constellation size `M`.
    pub fn points(self) -> u32 {
        1 << self.bits_per_symbol()
    }

    /// Uncoded bit error rate on an AWGN channel at symbol SINR `gamma`
    /// (linear, Es/N0). Standard Gray-mapping approximations:
    ///
    /// * BPSK:  `Q(sqrt(2 gamma))`
    /// * QPSK:  `Q(sqrt(gamma))`
    /// * M-QAM: `(4/log2 M)(1 - 1/sqrt M) Q(sqrt(3 gamma / (M - 1)))`
    pub fn uncoded_ber(self, gamma: f64) -> f64 {
        if gamma <= 0.0 {
            return 0.5;
        }
        let ber = match self {
            Modulation::Bpsk => q_func((2.0 * gamma).sqrt()),
            Modulation::Qpsk => q_func(gamma.sqrt()),
            Modulation::Qam16 => 0.75 * q_func((gamma / 5.0).sqrt()),
            Modulation::Qam64 => (7.0 / 12.0) * q_func((gamma / 21.0).sqrt()),
        };
        ber.clamp(0.0, 0.5)
    }

    /// Unit-average-energy constellation points, Gray-mapped per axis.
    ///
    /// Used by the bit-level simulation tests that validate the analytic BER
    /// model, and by the mercury/waterfilling MMSE curves.
    pub fn constellation(self) -> Vec<C64> {
        match self {
            Modulation::Bpsk => vec![C64::real(-1.0), C64::real(1.0)],
            Modulation::Qpsk => square_qam(2),
            Modulation::Qam16 => square_qam(4),
            Modulation::Qam64 => square_qam(8),
        }
    }

    /// Per-axis PAM amplitude levels of the unit-energy constellation
    /// (the I/Q components of square QAM are independent PAM).
    pub fn pam_levels(self) -> Vec<f64> {
        match self {
            Modulation::Bpsk => vec![-1.0, 1.0],
            Modulation::Qpsk => pam(2, 2.0f64.sqrt()),
            Modulation::Qam16 => pam(4, 10.0f64.sqrt()),
            Modulation::Qam64 => pam(8, 42.0f64.sqrt()),
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
        };
        write!(f, "{s}")
    }
}

/// `m`-level PAM amplitudes `{+-1, +-3, ...} / norm`.
fn pam(m: usize, norm: f64) -> Vec<f64> {
    (0..m)
        .map(|i| (2.0 * i as f64 - (m as f64 - 1.0)) / norm)
        .collect()
}

/// Square QAM from an `m`-level PAM per axis, unit average energy.
fn square_qam(m: usize) -> Vec<C64> {
    let energy_per_axis = ((m * m - 1) as f64 / 3.0).sqrt(); // per-axis levels +-1..+-(m-1)
    let levels = pam(m, 1.0);
    let mut pts = Vec::with_capacity(m * m);
    for &i_lvl in &levels {
        for &q_lvl in &levels {
            pts.push(
                C64::new(i_lvl, q_lvl).scale((m as f64 - 1.0) / energy_per_axis / (m as f64 - 1.0)),
            );
        }
    }
    // Normalize to exactly unit average energy.
    let avg: f64 = pts.iter().map(|p| p.norm_sqr()).sum::<f64>() / pts.len() as f64;
    let s = 1.0 / avg.sqrt();
    pts.iter().map(|p| p.scale(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_points() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qam64.points(), 64);
        assert_eq!(Modulation::Qam16.points(), 16);
    }

    #[test]
    fn ber_monotone_in_snr() {
        for m in Modulation::ALL {
            let mut prev = 0.6;
            for db in -10..=40 {
                let gamma = copa_num::special::db_to_lin(db as f64);
                let ber = m.uncoded_ber(gamma);
                assert!(ber <= prev + 1e-15, "{m} BER not monotone at {db} dB");
                assert!((0.0..=0.5).contains(&ber));
                prev = ber;
            }
        }
    }

    #[test]
    fn higher_order_modulation_has_higher_ber() {
        // At operating SNRs, denser constellations are harder to decode.
        // (Below ~5 dB the Gray-coding approximations for 16/64-QAM cross
        // slightly; that regime is far outside either constellation's use.)
        for db in [10, 20, 30] {
            let gamma = copa_num::special::db_to_lin(db as f64);
            let bers: Vec<f64> = Modulation::ALL
                .iter()
                .map(|m| m.uncoded_ber(gamma))
                .collect();
            for w in bers.windows(2) {
                assert!(
                    w[0] <= w[1] + 1e-12,
                    "ordering violated at {db} dB: {bers:?}"
                );
            }
        }
    }

    #[test]
    fn ber_reference_points() {
        // BPSK at 9.6 dB -> ~1e-5 (classic reference).
        let gamma = copa_num::special::db_to_lin(9.6);
        let ber = Modulation::Bpsk.uncoded_ber(gamma);
        assert!((ber / 1.0e-5).ln().abs() < 0.35, "BPSK@9.6dB = {ber:e}");
        // Zero/negative SNR saturates at 1/2.
        assert_eq!(Modulation::Qam64.uncoded_ber(0.0), 0.5);
        assert_eq!(Modulation::Qam64.uncoded_ber(-1.0), 0.5);
    }

    #[test]
    fn constellations_have_unit_energy() {
        for m in Modulation::ALL {
            let pts = m.constellation();
            assert_eq!(pts.len() as u32, m.points());
            let avg: f64 = pts.iter().map(|p| p.norm_sqr()).sum::<f64>() / pts.len() as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{m} energy {avg}");
        }
    }

    #[test]
    fn pam_levels_unit_energy_per_complex_symbol() {
        // For QAM, I and Q each carry half the symbol energy.
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let lv = m.pam_levels();
            let e: f64 = lv.iter().map(|x| x * x).sum::<f64>() / lv.len() as f64;
            assert!((e - 0.5).abs() < 1e-12, "{m} per-axis energy {e}");
        }
        let bpsk: f64 = Modulation::Bpsk
            .pam_levels()
            .iter()
            .map(|x| x * x)
            .sum::<f64>()
            / 2.0;
        assert!((bpsk - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constellation_is_symmetric() {
        for m in Modulation::ALL {
            let pts = m.constellation();
            for p in &pts {
                assert!(
                    pts.iter().any(|q| (*q + *p).abs() < 1e-9),
                    "{m} not symmetric around origin"
                );
            }
        }
    }
}
