//! Soft-decision demapping and Viterbi decoding.
//!
//! Real 802.11 receivers feed the Viterbi decoder log-likelihood ratios
//! rather than hard bits, which buys roughly 2 dB. The bit-true validation
//! chain supports both; the analytic throughput model is calibrated against
//! the hard-decision path (conservative), so soft decoding here quantifies
//! the headroom.
//!
//! LLR convention: positive values favor bit `0`;
//! `llr = log P(bit=0 | y) - log P(bit=1 | y)`.

use crate::coding::{CodeRate, CONSTRAINT_LENGTH};
use crate::mapper::Mapper;
use copa_num::complex::C64;

const G0: u32 = 0o133;
const G1: u32 = 0o171;
const STATES: usize = 1 << (CONSTRAINT_LENGTH - 1);

/// Computes exact max-log per-bit LLRs for one received symbol.
///
/// `y` is the equalized observation, `noise_var` the post-equalization
/// complex noise variance. Appends `bits_per_symbol` LLRs to `out`.
pub fn soft_demap(mapper: &Mapper, y: C64, noise_var: f64, out: &mut Vec<f64>) {
    let bps = mapper.bits_per_symbol();
    let inv = 1.0 / noise_var.max(1e-300);
    // Enumerate the constellation by mapping every bit pattern -- M <= 64,
    // cheap, and keeps a single source of truth for the labeling.
    let points: Vec<(usize, C64)> = (0..(1usize << bps))
        .map(|pattern| {
            let bits: Vec<u8> = (0..bps).rev().map(|k| ((pattern >> k) & 1) as u8).collect();
            (pattern, mapper.map_symbol(&bits))
        })
        .collect();
    for k in 0..bps {
        let bit_of = |pattern: usize| (pattern >> (bps - 1 - k)) & 1;
        let mut best0 = f64::MAX;
        let mut best1 = f64::MAX;
        for &(pattern, x) in &points {
            let d = (y - x).norm_sqr() * inv;
            if bit_of(pattern) == 0 {
                best0 = best0.min(d);
            } else {
                best1 = best1.min(d);
            }
        }
        // max-log: llr = min distance(bit=1) - min distance(bit=0).
        out.push(best1 - best0);
    }
}

/// Soft-decision Viterbi decoder over punctured LLR streams.
///
/// `llrs` holds one LLR per *transmitted* coded bit (punctured positions
/// absent), matching the output ordering of [`crate::coding::encode`].
/// Returns the decoded information bits.
pub fn soft_viterbi_decode(llrs: &[f64], info_len: usize, rate: CodeRate) -> Vec<u8> {
    let pattern = rate.puncture_pattern_public();
    let total_steps = info_len + CONSTRAINT_LENGTH - 1;

    #[derive(Clone, Copy)]
    struct Step {
        a: Option<f64>,
        b: Option<f64>,
    }
    let mut steps = Vec::with_capacity(total_steps);
    let mut idx = 0usize;
    for i in 0..total_steps {
        let (keep_a, keep_b) = pattern[i % pattern.len()];
        let a = if keep_a {
            let v = llrs.get(idx).copied();
            idx += 1;
            v
        } else {
            None
        };
        let b = if keep_b {
            let v = llrs.get(idx).copied();
            idx += 1;
            v
        } else {
            None
        };
        assert!(
            (!keep_a || a.is_some()) && (!keep_b || b.is_some()),
            "LLR sequence too short"
        );
        steps.push(Step { a, b });
    }

    const INF: f64 = f64::MAX / 4.0;
    let mut metric = vec![INF; STATES];
    metric[0] = 0.0;
    let mut pred: Vec<Vec<u8>> = Vec::with_capacity(total_steps);

    for step in &steps {
        let mut next = vec![INF; STATES];
        let mut choice = vec![0u8; STATES];
        for s in 0..STATES {
            if metric[s] >= INF {
                continue;
            }
            for bit in 0..2u32 {
                let reg = ((s as u32) << 1) | bit;
                let a = ((reg & G0).count_ones() & 1) as f64;
                let b = ((reg & G1).count_ones() & 1) as f64;
                let ns = (reg & (STATES as u32 - 1)) as usize;
                // Branch metric: -llr/2 for bit 1, +llr/2 for bit 0 would
                // be symmetric; use cost = llr * coded_bit (selects the
                // hypothesis the LLR disfavors proportionally).
                let mut mtr = metric[s];
                if let Some(la) = step.a {
                    mtr += if a > 0.5 { la.max(0.0) } else { (-la).max(0.0) };
                }
                if let Some(lb) = step.b {
                    mtr += if b > 0.5 { lb.max(0.0) } else { (-lb).max(0.0) };
                }
                if mtr < next[ns] {
                    next[ns] = mtr;
                    choice[ns] = s as u8;
                }
            }
        }
        pred.push(choice);
        metric = next;
    }

    let mut state = 0usize;
    let mut decoded = vec![0u8; total_steps];
    for i in (0..total_steps).rev() {
        decoded[i] = (state & 1) as u8;
        state = pred[i][state] as usize;
    }
    decoded.truncate(info_len);
    decoded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::encode;
    use crate::modulation::Modulation;
    use copa_num::SimRng;

    fn hard_llrs(coded: &[u8], confidence: f64) -> Vec<f64> {
        coded
            .iter()
            .map(|&b| if b == 0 { confidence } else { -confidence })
            .collect()
    }

    #[test]
    fn soft_decoder_inverts_encoder_with_confident_llrs() {
        let mut rng = SimRng::seed_from(1);
        for rate in CodeRate::ALL {
            let bits: Vec<u8> = (0..150).map(|_| (rng.next_u64() & 1) as u8).collect();
            let coded = encode(&bits, rate);
            let decoded = soft_viterbi_decode(&hard_llrs(&coded, 4.0), bits.len(), rate);
            assert_eq!(decoded, bits, "rate {rate}");
        }
    }

    #[test]
    fn weak_llrs_are_overruled_by_strong_ones() {
        // Flip a few bits but mark them low-confidence: the decoder should
        // still recover, unlike a hard decoder fed the same flips at equal
        // weight... (here we verify recovery).
        let mut rng = SimRng::seed_from(2);
        let bits: Vec<u8> = (0..200).map(|_| (rng.next_u64() & 1) as u8).collect();
        let coded = encode(&bits, CodeRate::R12);
        let mut llrs = hard_llrs(&coded, 4.0);
        for &pos in &[5usize, 50, 100, 150, 200, 250] {
            llrs[pos] = -llrs[pos] * 0.1; // wrong, but weak
        }
        let decoded = soft_viterbi_decode(&llrs, bits.len(), CodeRate::R12);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn soft_demap_sign_matches_hard_decision() {
        let mut rng = SimRng::seed_from(3);
        for m in Modulation::ALL {
            let mapper = Mapper::new(m);
            let bps = mapper.bits_per_symbol();
            for _ in 0..200 {
                let bits: Vec<u8> = (0..bps).map(|_| (rng.next_u64() & 1) as u8).collect();
                let x = mapper.map_symbol(&bits);
                let y = x + rng.randc().scale(0.02); // tiny noise
                let mut llrs = Vec::new();
                soft_demap(&mapper, y, 0.01, &mut llrs);
                let mut hard = Vec::new();
                mapper.demap_symbol(y, &mut hard);
                for (l, &h) in llrs.iter().zip(&hard) {
                    assert_eq!((*l < 0.0) as u8, h, "{m}: LLR sign vs hard decision");
                }
            }
        }
    }

    #[test]
    fn llr_magnitude_tracks_distance_from_boundary() {
        let mapper = Mapper::new(Modulation::Bpsk);
        let mut near = Vec::new();
        soft_demap(&mapper, C64::real(0.1), 1.0, &mut near);
        let mut far = Vec::new();
        soft_demap(&mapper, C64::real(0.9), 1.0, &mut far);
        assert!(far[0].abs() > near[0].abs());
    }

    #[test]
    fn soft_beats_hard_on_noisy_channel() {
        // The classic ~2 dB soft-decision gain: at an SNR where hard
        // decoding leaves errors, soft decoding leaves fewer.
        let mut rng = SimRng::seed_from(4);
        let mapper = Mapper::new(Modulation::Qpsk);
        let rate = CodeRate::R12;
        let n = 3000;
        let bits: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 1) as u8).collect();
        let coded = encode(&bits, rate);
        // Map coded bits to QPSK symbols (pad to even length).
        let mut padded = coded.clone();
        if padded.len() % 2 == 1 {
            padded.push(0);
        }
        let symbols = mapper.map(&padded);
        let snr = copa_num::special::db_to_lin(1.5);
        let sigma = (1.0 / snr).sqrt();
        let received: Vec<C64> = symbols
            .iter()
            .map(|&x| x + rng.randc().scale(sigma))
            .collect();

        // Hard path.
        let hard_bits = mapper.demap(&received);
        let hard_decoded = crate::coding::viterbi_decode(&hard_bits[..coded.len()], n, rate);
        let hard_errs = hard_decoded
            .iter()
            .zip(&bits)
            .filter(|(a, b)| a != b)
            .count();

        // Soft path.
        let mut llrs = Vec::new();
        for &y in &received {
            soft_demap(&mapper, y, 1.0 / snr, &mut llrs);
        }
        llrs.truncate(coded.len());
        let soft_decoded = soft_viterbi_decode(&llrs, n, rate);
        let soft_errs = soft_decoded
            .iter()
            .zip(&bits)
            .filter(|(a, b)| a != b)
            .count();

        assert!(
            soft_errs < hard_errs,
            "soft ({soft_errs}) should beat hard ({hard_errs}) at 1.5 dB"
        );
    }
}
