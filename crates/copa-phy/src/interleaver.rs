//! The 802.11 block interleaver.
//!
//! Coded bits are interleaved across the subcarriers of each OFDM symbol so
//! a deep fade hits scattered code bits rather than a burst -- this is what
//! makes the decoder see the *average* of per-subcarrier BERs (the model
//! `copa-phy::link` uses), and why a few terrible subcarriers poison whole
//! frames.
//!
//! Standard two-permutation interleaver (802.11n, 20 MHz, one stream) over
//! `N_CBPS` coded bits per symbol with `N_COL = 13` columns and
//! `N_ROW = 4 * N_BPSC` rows (13 x 4 x N_BPSC = 52 x N_BPSC = N_CBPS):
//!   first:  `i = N_ROW * (k mod N_COL) + floor(k / N_COL)`
//!   second: `j = s*floor(i/s) + (i + N_CBPS - floor(N_COL*i/N_CBPS)) mod s`,
//! with `s = max(N_BPSC/2, 1)`.

use crate::modulation::Modulation;
use crate::ofdm::DATA_SUBCARRIERS;

/// Interleaver for one OFDM symbol of a given modulation.
#[derive(Clone, Debug)]
pub struct Interleaver {
    /// Coded bits per OFDM symbol.
    n_cbps: usize,
    /// Permutation: output position of each input bit.
    forward: Vec<usize>,
    /// Inverse permutation.
    inverse: Vec<usize>,
}

impl Interleaver {
    /// Builds the interleaver for `modulation` over the 52 data subcarriers.
    pub fn new(modulation: Modulation) -> Self {
        let n_bpsc = modulation.bits_per_symbol() as usize;
        let n_cbps = n_bpsc * DATA_SUBCARRIERS;
        let n_col = 13;
        let n_row = 4 * n_bpsc;
        let s = (n_bpsc / 2).max(1);
        let mut forward = vec![0usize; n_cbps];
        for k in 0..n_cbps {
            let i = n_row * (k % n_col) + k / n_col;
            let j = s * (i / s) + (i + n_cbps - (n_col * i) / n_cbps) % s;
            forward[k] = j;
        }
        let mut inverse = vec![0usize; n_cbps];
        for (k, &j) in forward.iter().enumerate() {
            inverse[j] = k;
        }
        Self {
            n_cbps,
            forward,
            inverse,
        }
    }

    /// Coded bits per OFDM symbol.
    pub fn block_len(&self) -> usize {
        self.n_cbps
    }

    /// Interleaves one block (`bits.len()` must equal [`block_len`]).
    ///
    /// [`block_len`]: Interleaver::block_len
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        let mut out = vec![0u8; self.n_cbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.forward[k]] = b;
        }
        out
    }

    /// Coded-order position of interleaved position `j` (for soft values,
    /// which the byte-oriented [`deinterleave`] cannot carry).
    ///
    /// [`deinterleave`]: Interleaver::deinterleave
    pub fn deinterleave_index(&self, j: usize) -> usize {
        self.inverse[j]
    }

    /// Inverse of [`interleave`].
    ///
    /// [`interleave`]: Interleaver::interleave
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        let mut out = vec![0u8; self.n_cbps];
        for (j, &b) in bits.iter().enumerate() {
            out[self.inverse[j]] = b;
        }
        out
    }

    // alloc-free: begin interleave_into (kernel -- caller-owned buffers)
    /// [`interleave`] writing into a caller-owned buffer (bit-identical; no
    /// allocation once `out` has grown to the block length).
    ///
    /// [`interleave`]: Interleaver::interleave
    pub fn interleave_into(&self, bits: &[u8], out: &mut Vec<u8>) {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        out.clear();
        out.resize(self.n_cbps, 0);
        for (k, &b) in bits.iter().enumerate() {
            out[self.forward[k]] = b;
        }
    }

    /// [`deinterleave`] writing into a caller-owned buffer (bit-identical).
    ///
    /// [`deinterleave`]: Interleaver::deinterleave
    pub fn deinterleave_into(&self, bits: &[u8], out: &mut Vec<u8>) {
        assert_eq!(bits.len(), self.n_cbps, "block size mismatch");
        out.clear();
        out.resize(self.n_cbps, 0);
        for (j, &b) in bits.iter().enumerate() {
            out[self.inverse[j]] = b;
        }
    }
    // alloc-free: end interleave_into
}

#[cfg(test)]
mod tests {
    use super::*;
    use copa_num::SimRng;

    #[test]
    fn round_trip_all_modulations() {
        let mut rng = SimRng::seed_from(1);
        for m in Modulation::ALL {
            let il = Interleaver::new(m);
            let bits: Vec<u8> = (0..il.block_len())
                .map(|_| (rng.next_u64() & 1) as u8)
                .collect();
            let back = il.deinterleave(&il.interleave(&bits));
            assert_eq!(back, bits, "{m}");
        }
    }

    #[test]
    fn is_a_permutation() {
        for m in Modulation::ALL {
            let il = Interleaver::new(m);
            let mut seen = vec![false; il.block_len()];
            for &j in &il.forward {
                assert!(!seen[j], "{m}: not a permutation");
                seen[j] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn block_lengths_match_standard() {
        assert_eq!(Interleaver::new(Modulation::Bpsk).block_len(), 52);
        assert_eq!(Interleaver::new(Modulation::Qpsk).block_len(), 104);
        assert_eq!(Interleaver::new(Modulation::Qam16).block_len(), 208);
        assert_eq!(Interleaver::new(Modulation::Qam64).block_len(), 312);
    }

    #[test]
    fn adjacent_bits_land_on_distant_subcarriers() {
        // The point of interleaving: consecutive coded bits must not land
        // on the same or adjacent subcarriers.
        let il = Interleaver::new(Modulation::Qam16);
        let n_bpsc = 4;
        for k in 0..il.block_len() - 1 {
            let sc_a = il.forward[k] / n_bpsc;
            let sc_b = il.forward[k + 1] / n_bpsc;
            assert!(
                sc_a != sc_b,
                "consecutive bits {k},{} on same subcarrier {sc_a}",
                k + 1
            );
        }
    }

    #[test]
    fn burst_is_scattered() {
        // A fade covering 13 adjacent subcarriers corrupts code bits spread
        // across the whole codeword, not a contiguous burst.
        let il = Interleaver::new(Modulation::Bpsk);
        let n = il.block_len();
        // Mark bits on 13 adjacent subcarriers (positions after interleave).
        let mut marked = vec![0u8; n];
        for j in 0..13 {
            marked[j] = 1;
        }
        let original_positions = il.deinterleave(&marked);
        let positions: Vec<usize> = original_positions
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == 1)
            .map(|(i, _)| i)
            .collect();
        let span = positions.last().unwrap() - positions.first().unwrap();
        assert!(span >= n / 2, "burst not spread: span {span} of {n}");
        // Not one contiguous run.
        let contiguous = positions.windows(2).all(|w| w[1] - w[0] == 1);
        assert!(!contiguous, "burst stayed contiguous after deinterleaving");
    }
}
