//! Property-based tests for the PHY models.

use copa_phy::coding::{coded_ber, encode, frame_error_rate, viterbi_decode, CodeRate};
use copa_phy::link::ThroughputModel;
use copa_phy::mcs::Mcs;
use copa_phy::modulation::Modulation;
use proptest::prelude::*;

fn modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
    ]
}

fn code_rate() -> impl Strategy<Value = CodeRate> {
    prop_oneof![
        Just(CodeRate::R12),
        Just(CodeRate::R23),
        Just(CodeRate::R34),
        Just(CodeRate::R56),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uncoded_ber_in_range_and_monotone(m in modulation(), db in -20.0f64..50.0) {
        let g1 = copa_num::special::db_to_lin(db);
        let g2 = copa_num::special::db_to_lin(db + 1.0);
        let b1 = m.uncoded_ber(g1);
        let b2 = m.uncoded_ber(g2);
        prop_assert!((0.0..=0.5).contains(&b1));
        prop_assert!(b2 <= b1 + 1e-15, "BER must not increase with SNR");
    }

    #[test]
    fn coded_ber_bounded_and_monotone(r in code_rate(), p in 0.0f64..0.4) {
        let c1 = coded_ber(p, r);
        let c2 = coded_ber(p * 1.1, r);
        prop_assert!((0.0..=0.5).contains(&c1));
        prop_assert!(c2 >= c1 - 1e-18);
        // Coding helps at low channel BER.
        if p < 1e-3 {
            prop_assert!(c1 <= p, "coding should not amplify rare errors: {c1} vs {p}");
        }
    }

    #[test]
    fn viterbi_inverts_encoder(bits in proptest::collection::vec(0u8..2, 1..200), r in code_rate()) {
        let coded = encode(&bits, r);
        let decoded = viterbi_decode(&coded, bits.len(), r);
        prop_assert_eq!(decoded, bits);
    }

    #[test]
    fn fer_is_probability_and_monotone(pb in 0.0f64..1.0, len in 1usize..4000) {
        let f = frame_error_rate(pb, len);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(frame_error_rate(pb, len + 1) >= f - 1e-15);
        if pb > 0.0 {
            prop_assert!(frame_error_rate((pb * 1.5).min(1.0), len) >= f - 1e-15);
        }
    }

    #[test]
    fn goodput_never_exceeds_phy_rate(
        sinrs_db in proptest::collection::vec(-10.0f64..45.0, 1..104),
        eff in 0.1f64..1.0,
    ) {
        let sinrs: Vec<f64> = sinrs_db.iter().map(|&d| copa_num::special::db_to_lin(d)).collect();
        let model = ThroughputModel::default();
        let choice = model.best(&sinrs, eff);
        let cap = choice.mcs.phy_rate_bps_with(sinrs.len()) * eff;
        prop_assert!(choice.goodput_bps <= cap + 1.0);
        prop_assert!(choice.goodput_bps >= 0.0);
        prop_assert!((0.0..=1.0).contains(&choice.fer));
    }

    #[test]
    fn best_mcs_dominates_all_alternatives(
        sinrs_db in proptest::collection::vec(0.0f64..40.0, 10..60),
    ) {
        let sinrs: Vec<f64> = sinrs_db.iter().map(|&d| copa_num::special::db_to_lin(d)).collect();
        let model = ThroughputModel::default();
        let best = model.best(&sinrs, 1.0);
        for &mcs in &Mcs::TABLE {
            let alt = model.evaluate(mcs, &sinrs, 1.0);
            prop_assert!(best.goodput_bps >= alt.goodput_bps - 1e-9);
        }
    }

    #[test]
    fn multi_decoder_at_least_single(
        sinrs_db in proptest::collection::vec(-5.0f64..40.0, 10..104),
    ) {
        let sinrs: Vec<f64> = sinrs_db.iter().map(|&d| copa_num::special::db_to_lin(d)).collect();
        let model = ThroughputModel::default();
        let single = model.best(&sinrs, 1.0).goodput_bps;
        let multi = model.multi_decoder_goodput(&sinrs, 1.0);
        // Per-subcarrier adaptation upper-bounds the single-MCS rate up to
        // the FER model's frame-level coupling; allow a small slack.
        prop_assert!(multi >= single * 0.98, "multi {multi} < single {single}");
    }

    #[test]
    fn dropping_subcarriers_scales_rate(m in 0usize..8, active in 1usize..52) {
        let mcs = Mcs::TABLE[m];
        let full = mcs.phy_rate_bps();
        let partial = mcs.phy_rate_bps_with(active);
        prop_assert!((partial - full * active as f64 / 52.0).abs() < 1e-6);
    }
}
