//! Property-based tests for the PHY models, on the in-repo
//! [`copa_num::prop`] harness.

use copa_num::complex::{C64, ZERO};
use copa_num::prop::{check, Gen};
use copa_num::{prop_assert, prop_assert_eq};
use copa_phy::baseband::CP_SAMPLES;
use copa_phy::coding::{coded_ber, encode, frame_error_rate, viterbi_decode, CodeRate};
use copa_phy::link::ThroughputModel;
use copa_phy::mcs::Mcs;
use copa_phy::modulation::Modulation;
use copa_phy::ofdm::{DATA_SUBCARRIERS, FFT_SIZE};
use copa_phy::waveform::{
    apply_cfo, max_cfo_hz, modulate_frame_into, synchronize, Preamble, WaveformScratch,
    PREAMBLE_SAMPLES, SYMBOL_SAMPLES,
};

const CASES: usize = 48;

const MODULATIONS: [Modulation; 4] = [
    Modulation::Bpsk,
    Modulation::Qpsk,
    Modulation::Qam16,
    Modulation::Qam64,
];

const CODE_RATES: [CodeRate; 4] = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56];

fn modulation(g: &mut Gen) -> Modulation {
    *g.pick(&MODULATIONS)
}

fn code_rate(g: &mut Gen) -> CodeRate {
    *g.pick(&CODE_RATES)
}

#[test]
fn uncoded_ber_in_range_and_monotone() {
    check("uncoded_ber_in_range_and_monotone", CASES, |g| {
        let m = modulation(g);
        let db = g.f64_in(-20.0, 50.0);
        let g1 = copa_num::special::db_to_lin(db);
        let g2 = copa_num::special::db_to_lin(db + 1.0);
        let b1 = m.uncoded_ber(g1);
        let b2 = m.uncoded_ber(g2);
        prop_assert!((0.0..=0.5).contains(&b1));
        prop_assert!(b2 <= b1 + 1e-15, "BER must not increase with SNR");
        Ok(())
    });
}

#[test]
fn coded_ber_bounded_and_monotone() {
    check("coded_ber_bounded_and_monotone", CASES, |g| {
        let r = code_rate(g);
        let p = g.f64_in(0.0, 0.4);
        let c1 = coded_ber(p, r);
        let c2 = coded_ber(p * 1.1, r);
        prop_assert!((0.0..=0.5).contains(&c1));
        prop_assert!(c2 >= c1 - 1e-18);
        // Coding helps at low channel BER.
        if p < 1e-3 {
            prop_assert!(
                c1 <= p,
                "coding should not amplify rare errors: {c1} vs {p}"
            );
        }
        Ok(())
    });
}

#[test]
fn viterbi_inverts_encoder() {
    check("viterbi_inverts_encoder", CASES, |g| {
        let n = g.usize_in(1, 200);
        let bits: Vec<u8> = (0..n).map(|_| g.u8() & 1).collect();
        let r = code_rate(g);
        let coded = encode(&bits, r);
        let decoded = viterbi_decode(&coded, bits.len(), r);
        prop_assert_eq!(decoded, bits);
        Ok(())
    });
}

#[test]
fn fer_is_probability_and_monotone() {
    check("fer_is_probability_and_monotone", CASES, |g| {
        let pb = g.f64_in(0.0, 1.0);
        let len = g.usize_in(1, 4000);
        let f = frame_error_rate(pb, len);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(frame_error_rate(pb, len + 1) >= f - 1e-15);
        if pb > 0.0 {
            prop_assert!(frame_error_rate((pb * 1.5).min(1.0), len) >= f - 1e-15);
        }
        Ok(())
    });
}

#[test]
fn goodput_never_exceeds_phy_rate() {
    check("goodput_never_exceeds_phy_rate", CASES, |g| {
        let sinrs_db = g.vec_f64(-10.0, 45.0, 1, 104);
        let eff = g.f64_in(0.1, 1.0);
        let sinrs: Vec<f64> = sinrs_db
            .iter()
            .map(|&d| copa_num::special::db_to_lin(d))
            .collect();
        let model = ThroughputModel::default();
        let choice = model.best(&sinrs, eff);
        let cap = choice.mcs.phy_rate_bps_with(sinrs.len()) * eff;
        prop_assert!(choice.goodput_bps <= cap + 1.0);
        prop_assert!(choice.goodput_bps >= 0.0);
        prop_assert!((0.0..=1.0).contains(&choice.fer));
        Ok(())
    });
}

#[test]
fn best_mcs_dominates_all_alternatives() {
    check("best_mcs_dominates_all_alternatives", CASES, |g| {
        let sinrs_db = g.vec_f64(0.0, 40.0, 10, 60);
        let sinrs: Vec<f64> = sinrs_db
            .iter()
            .map(|&d| copa_num::special::db_to_lin(d))
            .collect();
        let model = ThroughputModel::default();
        let best = model.best(&sinrs, 1.0);
        for &mcs in &Mcs::TABLE {
            let alt = model.evaluate(mcs, &sinrs, 1.0);
            prop_assert!(best.goodput_bps >= alt.goodput_bps - 1e-9);
        }
        Ok(())
    });
}

#[test]
fn multi_decoder_at_least_single() {
    check("multi_decoder_at_least_single", CASES, |g| {
        let sinrs_db = g.vec_f64(-5.0, 40.0, 10, 104);
        let sinrs: Vec<f64> = sinrs_db
            .iter()
            .map(|&d| copa_num::special::db_to_lin(d))
            .collect();
        let model = ThroughputModel::default();
        let single = model.best(&sinrs, 1.0).goodput_bps;
        let multi = model.multi_decoder_goodput(&sinrs, 1.0);
        // Per-subcarrier adaptation upper-bounds the single-MCS rate up to
        // the FER model's frame-level coupling; allow a small slack.
        prop_assert!(multi >= single * 0.98, "multi {multi} < single {single}");
        Ok(())
    });
}

fn random_symbols(g: &mut Gen, n_symbols: usize) -> Vec<C64> {
    (0..n_symbols * DATA_SUBCARRIERS)
        .map(|_| C64::new(g.f64_in(-1.0, 1.0), g.f64_in(-1.0, 1.0)))
        .collect()
}

#[test]
fn cp_add_then_strip_is_the_identity() {
    // Modulating prepends a copy of each symbol's tail; the demodulation
    // window strips it. The CP must be an exact (bitwise) copy, and the
    // FFT of the stripped window must return the loaded subcarriers to
    // round-trip precision.
    check("cp_add_then_strip_is_the_identity", CASES, |g| {
        let p = Preamble::standard();
        let n_sym = g.usize_in(1, 6);
        let symbols = random_symbols(g, n_sym);
        let mut scratch = WaveformScratch::new();
        let mut frame = Vec::new();
        modulate_frame_into(&p, &symbols, &mut scratch, &mut frame);
        prop_assert_eq!(frame.len(), PREAMBLE_SAMPLES + n_sym * SYMBOL_SAMPLES);
        for t in 0..n_sym {
            let sym = &frame[PREAMBLE_SAMPLES + t * SYMBOL_SAMPLES..][..SYMBOL_SAMPLES];
            // CP == tail, bit for bit.
            for i in 0..CP_SAMPLES {
                prop_assert_eq!(sym[i].re.to_bits(), sym[FFT_SIZE + i].re.to_bits());
                prop_assert_eq!(sym[i].im.to_bits(), sym[FFT_SIZE + i].im.to_bits());
            }
            // Stripping the CP and demodulating recovers the symbols.
            let back = copa_phy::baseband::ofdm_demodulate(sym);
            for (a, b) in symbols[t * DATA_SUBCARRIERS..(t + 1) * DATA_SUBCARRIERS]
                .iter()
                .zip(&back)
            {
                prop_assert!((*a - *b).abs() <= 1e-12, "{a:?} vs {b:?}");
            }
        }
        Ok(())
    });
}

#[test]
fn sync_recovers_timing_offset_exactly_at_zero_noise() {
    check(
        "sync_recovers_timing_offset_exactly_at_zero_noise",
        CASES,
        |g| {
            let p = Preamble::standard();
            let search = 48;
            let offset = g.usize_in(0, search);
            let n_sym = g.usize_in(1, 4);
            let symbols = random_symbols(g, n_sym);
            let mut scratch = WaveformScratch::new();
            let mut frame = Vec::new();
            modulate_frame_into(&p, &symbols, &mut scratch, &mut frame);
            let mut rx = vec![ZERO; offset];
            rx.extend_from_slice(&frame);
            rx.extend(std::iter::repeat_n(ZERO, search + SYMBOL_SAMPLES));
            // A CFO well inside the estimator's unambiguous range must not
            // break exact timing recovery.
            let cfo = g.f64_in(-0.6, 0.6) * max_cfo_hz();
            apply_cfo(&mut rx, cfo);
            let mut corrected = Vec::new();
            let res = synchronize(&rx, &p, search, true, &mut corrected);
            prop_assert_eq!(res.start, offset, "cfo {cfo:.0} Hz");
            prop_assert!(
                (res.cfo_hz - cfo).abs() < 1e-3 * max_cfo_hz().max(1.0),
                "cfo {cfo} estimated {0}",
                res.cfo_hz
            );
            prop_assert!(res.metric > 0.999);
            Ok(())
        },
    );
}

#[test]
fn dropping_subcarriers_scales_rate() {
    check("dropping_subcarriers_scales_rate", CASES, |g| {
        let m = g.usize_in(0, 8);
        let active = g.usize_in(1, 52);
        let mcs = Mcs::TABLE[m];
        let full = mcs.phy_rate_bps();
        let partial = mcs.phy_rate_bps_with(active);
        prop_assert!((partial - full * active as f64 / 52.0).abs() < 1e-6);
        Ok(())
    });
}
