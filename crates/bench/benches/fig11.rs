//! Figure 11: throughput CDF across 30 topologies -- two 4-antenna APs, two 2-antenna clients.
//! Prints paper-vs-measured means and the reproduced CDF series, then
//! benchmarks one strategy-engine evaluation.

use copa_bench::harness::{black_box, Criterion};
use copa_bench::{print_comparison, threads, FIG11_PAPER};
use copa_channel::AntennaConfig;
use copa_core::{Engine, EvalRequest, ScenarioParams};
use copa_sim::{fig11, standard_suite};

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    let params = ScenarioParams {
        include_mercury: true,
        ..Default::default()
    };
    let exp = fig11(&suite, &params, threads());
    print_comparison(&exp, &FIG11_PAPER);
    let h = copa_sim::headline_stats(&exp).expect("fig11 has CSMA/Null/COPA series");
    println!("Section 1 headline statistics (paper / measured):");
    println!(
        "  nulling underperforms CSMA:  83% / {:.0}%",
        h.null_worse_than_csma * 100.0
    );
    println!(
        "  COPA over nulling (mean):    54-64% / {:.0}%",
        h.copa_over_null_mean * 100.0
    );
    println!(
        "  COPA beats CSMA:             76% / {:.0}%",
        h.copa_beats_csma * 100.0
    );
    println!();
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("engine_evaluate_fig11", |b| {
        let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
        let engine = Engine::new(ScenarioParams::default());
        b.iter(|| {
            black_box(
                engine
                    .run(&mut EvalRequest::topology(&suite[0]))
                    .expect("valid topology"),
            )
        })
    });
    c.final_summary();
}
