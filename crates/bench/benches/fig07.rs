//! Figure 7: per-subcarrier uncoded BER with COPA's allocation vs no power
//! allocation ("NoPA"), same nulling precoder -- COPA drops bad subcarriers
//! and wins on bitrate.

use copa_alloc::stream::{equi_sinr, StreamProblem};
use copa_bench::harness::{black_box, Criterion};
use copa_channel::AntennaConfig;
use copa_core::ScenarioParams;
use copa_phy::link::ThroughputModel;
use copa_sim::{fig7, standard_suite};

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    // The paper showcases a topology where COPA drops several subcarriers;
    // scan the suite for a comparable one (fall back to the first).
    let params = ScenarioParams::default();
    let f = suite
        .iter()
        .map(|t| fig7(t, &params))
        .find(|f| f.dropped.len() >= 4)
        .unwrap_or_else(|| fig7(&suite[0], &params));
    println!("== Figure 7: uncoded BER per subcarrier (stream 0, client 1) ==");
    println!(
        "COPA {:.1} Mbps vs NoPA {:.1} Mbps (paper: 32.4 vs 12.6); {} subcarriers dropped (paper: 8); MCS{}",
        f.copa_mbps,
        f.nopa_mbps,
        f.dropped.len(),
        f.mcs_index
    );
    println!("{:>4} {:>12} {:>12}", "sc", "COPA BER", "NoPA BER");
    for s in 0..f.ber_nopa.len() {
        match f.ber_copa[s] {
            Some(b) => println!("{s:>4} {:>12.2e} {:>12.2e}", b, f.ber_nopa[s]),
            None => println!("{s:>4} {:>12} {:>12.2e}", "dropped", f.ber_nopa[s]),
        }
    }
    println!();
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("equi_sinr_allocation_52sc", |b| {
        let mut rng = copa_num::SimRng::seed_from(7);
        let gains: Vec<f64> = (0..52)
            .map(|_| -rng.uniform().max(1e-12).ln() * 3e-8)
            .collect();
        let problem = StreamProblem::interference_free(gains, 1e-9 / 52.0, 15.8);
        let model = ThroughputModel::default();
        b.iter(|| black_box(equi_sinr(&problem, &model, 0.9)))
    });
    c.final_summary();
}
