//! Ablation benches: the design-choice sweeps DESIGN.md calls out
//! (coherence time, radio impairments, allocator choice, CSI aging).

use copa_bench::harness::{black_box, Criterion};
use copa_bench::threads;
use copa_channel::AntennaConfig;
use copa_core::ScenarioParams;
use copa_sim::ablations::{
    allocator_comparison, coherence_sweep, correlation_sweep, csi_aging_sweep, impairment_sweep,
};
use copa_sim::standard_suite;

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    let params = ScenarioParams::default();

    println!("== Ablation: coherence time (CSI dissemination cost) ==");
    println!(
        "{:>10} {:>8} {:>11} {:>8}",
        "coherence", "CSMA", "COPA fair", "gain"
    );
    for r in coherence_sweep(
        &suite,
        &params,
        &[4.0, 10.0, 30.0, 100.0, 1000.0],
        threads(),
    ) {
        println!(
            "{:>8}ms {:>8.1} {:>11.1} {:>7.2}x",
            r.coherence_ms, r.csma_mbps, r.copa_fair_mbps, r.gain
        );
    }

    println!("\n== Ablation: radio impairments (CSI error = TX EVM, dB) ==");
    println!(
        "{:>8} {:>8} {:>8} {:>11} {:>12}",
        "level", "CSMA", "Null", "COPA fair", "concurrency"
    );
    for r in impairment_sweep(
        &suite,
        &params,
        &[-40.0, -34.0, -28.0, -22.0, -16.0],
        threads(),
    ) {
        println!(
            "{:>6}dB {:>8.1} {:>8.1} {:>11.1} {:>11.0}%",
            r.impairment_db,
            r.csma_mbps,
            r.null_mbps,
            r.copa_fair_mbps,
            r.concurrency_rate * 100.0
        );
    }

    println!("\n== Ablation: single-stream allocators (mean over 40 faded channels) ==");
    for snr in [15.0, 25.0, 35.0] {
        let cmp = allocator_comparison(0xA110C, 40, snr);
        println!("  mean SNR {snr:.0} dB:");
        for (name, mbps) in cmp.names.iter().zip(&cmp.mean_mbps) {
            println!("    {:<18} {:>6.1} Mbps", name, mbps);
        }
    }
    println!(
        "  (paper section 2.1: Gaussian waterfilling is suboptimal for discrete\n\
         constellations; section 4.2: selection and allocation each capture part\n\
         of Algorithm 1's gain)"
    );

    println!("\n== Ablation: antenna correlation (Kronecker, exponential) ==");
    println!(
        "{:>6} {:>8} {:>8} {:>11}",
        "rho", "CSMA", "Null", "COPA fair"
    );
    for r in correlation_sweep(
        &params,
        AntennaConfig::CONSTRAINED_4X2,
        &[0.0, 0.3, 0.6, 0.9],
        12,
        threads(),
    ) {
        println!(
            "{:>6.1} {:>8.1} {:>8.1} {:>11.1}",
            r.rho, r.csma_mbps, r.null_mbps, r.copa_fair_mbps
        );
    }

    println!("\n== Ablation: CSI aging (channel correlation rho at transmit time) ==");
    println!("{:>6} {:>8} {:>11}", "rho", "Null", "COPA fair");
    for r in csi_aging_sweep(&suite, &params, &[1.0, 0.95, 0.9, 0.7, 0.5]) {
        println!(
            "{:>6.2} {:>8.1} {:>11.1}",
            r.rho, r.null_mbps, r.copa_fair_mbps
        );
    }
    println!();
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("allocator_comparison_10ch", |b| {
        b.iter(|| black_box(allocator_comparison(1, 10, 25.0)))
    });
    c.final_summary();
}
