//! Figure 13: throughput CDF across 30 topologies -- two 3-antenna APs, two 2-antenna clients.
//! Prints paper-vs-measured means and the reproduced CDF series, then
//! benchmarks one strategy-engine evaluation.

use copa_bench::harness::{black_box, Criterion};
use copa_bench::{print_comparison, threads, FIG13_PAPER};
use copa_channel::AntennaConfig;
use copa_core::{Engine, EvalRequest, ScenarioParams};
use copa_sim::{fig13, standard_suite};

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::OVERCONSTRAINED_3X2);
    let params = ScenarioParams {
        include_mercury: true,
        ..Default::default()
    };
    let exp = fig13(&suite, &params, threads());
    print_comparison(&exp, &FIG13_PAPER);
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("engine_evaluate_fig13", |b| {
        let suite = standard_suite(AntennaConfig::OVERCONSTRAINED_3X2);
        let engine = Engine::new(ScenarioParams::default());
        b.iter(|| {
            black_box(
                engine
                    .run(&mut EvalRequest::topology(&suite[0]))
                    .expect("valid topology"),
            )
        })
    });
    c.final_summary();
}
