//! Extension benches: experiments beyond the paper's own figures --
//! PAPR of subcarrier dropping (the section 4.1 aside), OFDMA-style
//! subcarrier reuse (section 4.2), time-domain episodes with CSI refresh,
//! soft- vs hard-decision decoding headroom, and cells of three APs
//! (section 3.1 future work).

use copa_bench::harness::{black_box, Criterion};
use copa_bench::threads;
use copa_channel::{AntennaConfig, TopologySampler};
use copa_core::cell::{run_cell, MultiApScenario};
use copa_core::{Engine, ScenarioParams};
use copa_num::SimRng;
use copa_phy::modulation::Modulation;
use copa_phy::papr::measure_papr;
use copa_sim::episode::{run_episode, EpisodeConfig};
use copa_sim::reuse::reuse_summary;

fn print_reproduction() {
    let _ = threads();

    println!("== Extension: PAPR vs dropped subcarriers (section 4.1 aside) ==");
    println!(
        "{:>8} {:>11} {:>10} {:>10}",
        "dropped", "scrambled", "mean dB", "p99 dB"
    );
    for dropped in [0usize, 4, 8, 16] {
        let s = measure_papr(Modulation::Qam64, dropped, true, 400, 0xAA);
        println!(
            "{:>8} {:>11} {:>10.1} {:>10.1}",
            s.dropped, "yes", s.mean_db, s.p99_db
        );
    }
    let unscrambled = measure_papr(Modulation::Qpsk, 8, false, 400, 0xAB);
    println!(
        "{:>8} {:>11} {:>10.1} {:>10.1}   <- why 802.11 scrambles",
        unscrambled.dropped, "no", unscrambled.mean_db, unscrambled.p99_db
    );
    println!("(paper: dropping a few subcarriers does not cause PAPR problems)\n");

    println!("== Extension: subcarrier reuse in 1x1 concurrent solutions (4.2) ==");
    let params = ScenarioParams::default();
    for (label, delta) in [("testbed interference", 0.0), ("interference -15 dB", 15.0)] {
        let suite: Vec<_> = TopologySampler::default()
            .suite(0x0F5E, 12, AntennaConfig::SINGLE)
            .iter()
            .map(|t| t.with_weaker_interference(delta))
            .collect();
        let s = reuse_summary(&suite, &params);
        println!(
            "  {label}: exclusive {:.0}%, shared {:.0}%, unused {:.0}% \
             (sharing in {} of 12 topologies)",
            s.mean_exclusive * 100.0,
            s.mean_shared * 100.0,
            s.mean_unused * 100.0,
            s.topologies_with_sharing
        );
    }
    println!("(paper: \"COPA has selected a form of OFDMA\"; true same-subcarrier\n concurrency appears in a few topologies)\n");

    println!("== Extension: time-domain episode (channel drift + CSI refresh) ==");
    let topo = TopologySampler::default()
        .suite(0xE9, 1, AntennaConfig::CONSTRAINED_4X2)
        .remove(0);
    for (label, refresh_s) in [
        ("refresh every coherence time", 0.030),
        ("refresh 10x too rarely", 0.300),
    ] {
        let cfg = EpisodeConfig {
            cycles: 60,
            refresh_interval_s: refresh_s,
            ..Default::default()
        };
        let r = run_episode(&topo, &params, &cfg).expect("episode");
        println!(
            "  {label}: COPA fair {:.1} Mbps, CSMA {:.1} Mbps, null {:.1} Mbps, {} refreshes",
            r.copa_fair_mbps,
            r.csma_mbps,
            r.null_mbps.unwrap_or(0.0),
            r.refreshes
        );
    }
    println!();

    println!("== Extension: three-AP cell (pairwise ITS, section 3.1 future work) ==");
    let mut rng = SimRng::seed_from(0x3A9);
    let scenario = MultiApScenario::sample(
        &TopologySampler::default(),
        &mut rng,
        AntennaConfig::CONSTRAINED_4X2,
        3,
    );
    let engine = Engine::new(params);
    let out = run_cell(&scenario, &engine, 12);
    println!(
        "  COPA cell {:.1} Mbps vs CSMA 1/3-share {:.1} Mbps ({:+.0}%), Jain {:.3}",
        out.aggregate_mbps(),
        out.csma_aggregate_mbps(),
        (out.aggregate_mbps() / out.csma_aggregate_mbps() - 1.0) * 100.0,
        out.jain
    );
    println!();
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("papr_400_symbols", |b| {
        b.iter(|| black_box(measure_papr(Modulation::Qam64, 8, true, 400, 1)))
    });
    c.bench_function("episode_cycle", |b| {
        let topo = TopologySampler::default()
            .suite(0xE9, 1, AntennaConfig::CONSTRAINED_4X2)
            .remove(0);
        let params = ScenarioParams::default();
        let cfg = EpisodeConfig {
            cycles: 2,
            ..Default::default()
        };
        b.iter(|| black_box(run_episode(&topo, &params, &cfg)))
    });
    c.final_summary();
}
