//! Figure 4: per-subcarrier SNR/SINR under beamforming vs nulling at one
//! client of a 4x2 topology -- nulling lowers the mean and raises the
//! variance, which is COPA's motivation.

use copa_bench::harness::{black_box, Criterion};
use copa_channel::{AntennaConfig, Impairments, MultipathProfile};
use copa_core::ScenarioParams;
use copa_num::stats::{mean, std_dev};
use copa_precoding::beamforming::beamform;
use copa_precoding::sinr::{mmse_sinr_grid, TxSide};
use copa_precoding::TxPowers;
use copa_sim::{fig4, standard_suite};

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    let f = fig4(&suite[0], &ScenarioParams::default());
    println!("== Figure 4: per-subcarrier S(I)NR (dB), client 1, topology 0 ==");
    println!(
        "{:>4} {:>8} {:>9} {:>10}",
        "sc", "SNR BF", "SNR Null", "SINR Null"
    );
    for s in 0..f.snr_bf_db.len() {
        println!(
            "{s:>4} {:>8.1} {:>9.1} {:>10.1}",
            f.snr_bf_db[s], f.snr_null_db[s], f.sinr_null_db[s]
        );
    }
    println!(
        "mean/std: BF {:.1}/{:.1}  Null {:.1}/{:.1}  SINR {:.1}/{:.1}",
        mean(&f.snr_bf_db),
        std_dev(&f.snr_bf_db),
        mean(&f.snr_null_db),
        std_dev(&f.snr_null_db),
        mean(&f.sinr_null_db),
        std_dev(&f.sinr_null_db),
    );
    println!("(paper: nulling lowers mean SNR and increases variance across subcarriers)\n");
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("mmse_sinr_grid_2streams_52sc", |b| {
        let mut rng = copa_num::SimRng::seed_from(4);
        let profile = MultipathProfile::default();
        let truth = copa_channel::FreqChannel::random(&mut rng, 2, 4, 1e-6, &profile);
        let cross = copa_channel::FreqChannel::random(&mut rng, 2, 4, 1e-7, &profile);
        let int_own = copa_channel::FreqChannel::random(&mut rng, 2, 4, 1e-6, &profile);
        let pre = beamform(&truth, 2);
        let int_pre = beamform(&int_own, 2);
        let powers = TxPowers::equal(2, 31.6);
        let imp = Impairments::default();
        b.iter(|| {
            let own = TxSide {
                channel: &truth,
                precoding: &pre,
                powers: &powers,
                budget_mw: 31.6,
            };
            let int = TxSide {
                channel: &cross,
                precoding: &int_pre,
                powers: &powers,
                budget_mw: 31.6,
            };
            black_box(mmse_sinr_grid(&own, Some(&int), 1e-9, &imp))
        })
    });
    c.final_summary();
}
