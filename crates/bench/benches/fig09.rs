//! Figure 9: the (signal, interference) scatter of the topology suite --
//! the large-scale envelope every other experiment runs over.

use copa_bench::harness::{black_box, Criterion};
use copa_channel::{AntennaConfig, TopologySampler};
use copa_num::SimRng;
use copa_sim::{fig9, standard_suite};

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    let f = fig9(&suite);
    println!("== Figure 9: signal vs interference power per receiver (dBm) ==");
    println!("(paper envelope: signal -70..-30 dBm, interference mostly below signal)");
    println!("{:>10} {:>14}", "signal", "interference");
    for (s, i) in &f.points {
        println!("{s:>10.1} {i:>14.1}");
    }
    let below = f.points.iter().filter(|(s, i)| s > i).count();
    println!(
        "{} of {} receivers have stronger signal than interference\n",
        below,
        f.points.len()
    );
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("topology_sample_4x2", |b| {
        let sampler = TopologySampler::default();
        let mut rng = SimRng::seed_from(9);
        b.iter(|| black_box(sampler.sample(&mut rng, AntennaConfig::CONSTRAINED_4X2)))
    });
    c.final_summary();
}
