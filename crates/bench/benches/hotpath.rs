//! Hot-path benchmark: per-subcarrier kernel cost, allocations per
//! evaluation, and whole-suite throughput through the parallel runner.
//!
//! Every figure in the paper is a CDF over topology suites, so wall-clock
//! is dominated by the kernel chain (nullspace projection -> SVD
//! beamforming -> MMSE SINR -> rate) repeated 52 subcarriers x strategies
//! x topologies. This bench pins that cost down with three views:
//!
//! 1. kernel timings (`svd_*`, `sinr_grid_*`) -- the per-subcarrier chain;
//! 2. engine timings (`evaluate_*`) -- one full topology evaluation;
//! 3. runner throughput (`suite_*`) -- a heterogeneous suite through
//!    `evaluate_parallel`, reported as topologies/second.
//!
//! A counting global allocator additionally reports **allocations per
//! evaluation** as `{"type":"alloc",...}` JSON lines, so the
//! allocation-free-hot-path guarantee is a measured number, not a claim.
//! All JSON lines use the in-repo harness format; `scripts/check.sh
//! --bench-smoke` captures them into `BENCH_hotpath.json` to build a
//! trajectory across PRs.

use copa_bench::harness::{black_box, Criterion};
use copa_channel::{AntennaConfig, MultipathProfile, TopologySampler};
use copa_core::{
    Engine, EngineMetrics, EngineObs, EngineWorkspace, EvalRequest, KernelMode, ScenarioParams,
};
use copa_num::{svd, CMat, SimRng};
use copa_obs::{FrozenClock, NoopSink, Telemetry, WallClock};
use copa_precoding::{beamform, mmse_sinr_grid, TxPowers, TxSide};
use copa_sim::json::{Obj, ToJson};
use copa_sim::{
    evaluate_cluster, evaluate_guarded, evaluate_parallel, plan_campus, run_daemon, CampusParams,
    CampusScheme, DaemonConfig,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global allocator wrapper that counts every heap allocation, so the
/// bench can report allocations-per-evaluation alongside wall time.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    f();
    ALLOC_COUNT.load(Ordering::Relaxed) - before
}

/// One `{"type":"alloc",...}` JSON line (same spirit as the bench lines).
struct AllocReport {
    name: String,
    allocs: u64,
}

impl ToJson for AllocReport {
    fn write_json(&self, out: &mut String) {
        Obj::new(out)
            .field("type", &"alloc")
            .field("name", &self.name)
            .field("allocs", &self.allocs)
            .finish();
    }
}

fn report_allocs(name: &str, allocs: u64) {
    let r = AllocReport {
        name: name.to_string(),
        allocs,
    };
    println!("alloc {:<32} {:>10} allocations", r.name, r.allocs);
    println!("{}", r.to_json());
}

/// A deliberately heterogeneous suite: mixed antenna configs so topology
/// costs differ and a static chunking of the suite would idle workers.
fn mixed_suite(per_config: usize) -> Vec<copa_channel::Topology> {
    let sampler = TopologySampler::default();
    let mut suite = sampler.suite(0xB0_07, per_config, AntennaConfig::CONSTRAINED_4X2);
    suite.extend(sampler.suite(0xB0_08, per_config, AntennaConfig::SINGLE));
    suite.extend(sampler.suite(0xB0_09, per_config, AntennaConfig::OVERCONSTRAINED_3X2));
    suite
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let params = ScenarioParams::default();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- 1. per-subcarrier kernels --------------------------------------
    let mut rng = SimRng::seed_from(0xFEED);
    let m24 = CMat::from_fn(2, 4, |_, _| rng.randc());
    c.bench_function("svd_2x4", |b| b.iter(|| svd(black_box(&m24))));

    let profile = MultipathProfile::default();
    let own = copa_channel::FreqChannel::random(&mut rng, 2, 4, 1e-6, &profile);
    let cross = copa_channel::FreqChannel::random(&mut rng, 2, 4, 1e-7, &profile);
    let imp = copa_channel::Impairments::default();
    let pre = beamform(&own, 2);
    let int_pre = beamform(&cross, 2);
    let powers = TxPowers::equal(2, 31.6);
    c.bench_function("sinr_grid_4x2_interf", |b| {
        b.iter(|| {
            let own_side = TxSide {
                channel: &own,
                precoding: &pre,
                powers: &powers,
                budget_mw: 31.6,
            };
            let int_side = TxSide {
                channel: &cross,
                precoding: &int_pre,
                powers: &powers,
                budget_mw: 31.6,
            };
            mmse_sinr_grid(black_box(&own_side), Some(&int_side), 1e-9, &imp)
        })
    });

    // --- 2. one full topology evaluation --------------------------------
    let t4x2 = TopologySampler::default()
        .suite(0xE0, 1, AntennaConfig::CONSTRAINED_4X2)
        .remove(0);
    let engine = Engine::new(params);
    c.bench_function("evaluate_4x2", |b| {
        b.iter(|| {
            engine
                .run(&mut EvalRequest::topology(black_box(&t4x2)))
                .expect("valid topology")
        })
    });

    // Allocations for one evaluation (median-free single shot is stable:
    // the count is deterministic). Warm up once so one-time lazy init is
    // excluded. Two views: a bare `EvalRequest` creates a fresh workspace
    // per call (the convenience API); `.workspace(..)` reuses a warmed one,
    // which is what the suite runner does per worker -- that number is the
    // allocation-free-kernel canary.
    let _ = engine.run(&mut EvalRequest::topology(&t4x2));
    let allocs = count_allocs(|| {
        let _ = black_box(engine.run(&mut EvalRequest::topology(&t4x2)));
    });
    report_allocs("evaluate_4x2", allocs);

    let mut ws = EngineWorkspace::new();
    let _ = engine.run(&mut EvalRequest::topology(&t4x2).workspace(&mut ws));
    let allocs_warm = count_allocs(|| {
        let _ = black_box(engine.run(&mut EvalRequest::topology(&t4x2).workspace(&mut ws)));
    });
    report_allocs("evaluate_4x2_warm_ws", allocs_warm);

    // Supervision guard: the supervisor's per-topology `catch_unwind`
    // wrapper must be free -- same warmed workspace, same topology, and
    // exactly as many allocations as the bare engine call. A regression
    // here means panic isolation started taxing the hot path.
    let _ = evaluate_guarded(&engine, 0, &t4x2, &mut ws);
    let allocs_guarded = count_allocs(|| {
        let _ = black_box(evaluate_guarded(&engine, 0, &t4x2, &mut ws));
    });
    report_allocs("evaluate_4x2_guarded", allocs_guarded);
    assert_eq!(
        allocs_guarded, allocs_warm,
        "evaluate_guarded must add zero allocations over the bare warmed path"
    );

    // Telemetry guard, noop sink: an observed request with a NoopSink must
    // be strictly pay-for-what-you-use -- zero added allocations over the
    // warmed path (and no clock reads, but that is a unit-test concern).
    let mut registry = Telemetry::new();
    let metrics = EngineMetrics::register(&mut registry);
    let frozen = FrozenClock(0);
    let noop_obs = EngineObs::new(&NoopSink, &frozen, metrics);
    let _ = engine.run(
        &mut EvalRequest::topology(&t4x2)
            .workspace(&mut ws)
            .observe(noop_obs),
    );
    let allocs_noop = count_allocs(|| {
        let _ = black_box(
            engine.run(
                &mut EvalRequest::topology(&t4x2)
                    .workspace(&mut ws)
                    .observe(noop_obs),
            ),
        );
    });
    report_allocs("evaluate_4x2_noop_obs", allocs_noop);
    assert_eq!(
        allocs_noop, allocs_warm,
        "a NoopSink-observed evaluation must add zero allocations over the warmed path"
    );

    // Telemetry guard, live sink (tracing off): counters and histograms
    // are preallocated atomics, so even live recording stays alloc-free.
    let live_obs = EngineObs::new(&registry, &frozen, metrics);
    let _ = engine.run(
        &mut EvalRequest::topology(&t4x2)
            .workspace(&mut ws)
            .observe(live_obs),
    );
    let allocs_live = count_allocs(|| {
        let _ = black_box(
            engine.run(
                &mut EvalRequest::topology(&t4x2)
                    .workspace(&mut ws)
                    .observe(live_obs),
            ),
        );
    });
    report_allocs("evaluate_4x2_live_obs", allocs_live);
    assert_eq!(
        allocs_live, allocs_warm,
        "a live-telemetry evaluation (tracing off) must stay allocation-free"
    );

    // Campus guard: a warmed pair-cluster evaluation must cost exactly as
    // much as the bare warmed engine call -- the N-cell layer's per-unit
    // work (seed derivation, scheme dispatch, outcome read) adds zero
    // allocations over the pair engine it wraps.
    let campus_cp = CampusParams::dense(8, 0xCA_BE, AntennaConfig::CONSTRAINED_4X2);
    let plan = plan_campus(&campus_cp);
    let pair_idx = plan
        .units
        .iter()
        .position(|u| u.members.len() == 2)
        .expect("a dense 8-cell campus forms at least one pair cluster");
    let unit = &plan.units[pair_idx];
    // The reference: the bare engine on the unit's own topology with the
    // cluster layer's derived per-index seed (allocation counts are
    // topology- and search-path-dependent, so the baseline must be the
    // exact same evaluation, not the 4x2 canary above).
    let mut pc = params;
    pc.seed = params
        .seed
        .wrapping_add(pair_idx as u64)
        .wrapping_mul(0x9E37_79B9);
    let cluster_engine = Engine::new(pc);
    let _ = cluster_engine.run(&mut EvalRequest::topology(&unit.topology).workspace(&mut ws));
    let allocs_unit_bare = count_allocs(|| {
        let _ = black_box(
            cluster_engine.run(&mut EvalRequest::topology(&unit.topology).workspace(&mut ws)),
        );
    });
    let allocs_cluster = count_allocs(|| {
        let _ = black_box(evaluate_cluster(
            &params,
            CampusScheme::Copa,
            pair_idx,
            unit,
            &plan.campus,
            &mut ws,
            None,
        ));
    });
    report_allocs("evaluate_pair_cluster_warm", allocs_cluster);
    assert_eq!(
        allocs_cluster, allocs_unit_bare,
        "a warmed pair-cluster evaluation must add zero allocations over the bare engine call"
    );

    // Hard gate: the warmed steady state is *zero* allocations, not merely
    // "stable". Every guard above pinned its variant to `allocs_warm`; this
    // pins `allocs_warm` itself (and the campus baseline) to 0, which is
    // what `scripts/check.sh --bench-smoke` greps out of BENCH_hotpath.json.
    assert_eq!(
        allocs_warm, 0,
        "warmed-workspace evaluation must be allocation-free (got {allocs_warm})"
    );
    assert_eq!(
        allocs_unit_bare, 0,
        "warmed cluster-unit evaluation must be allocation-free (got {allocs_unit_bare})"
    );

    // --- 3. per-phase medians (copa-obs spans over a live registry) ------
    // Re-run the warmed 4x2 evaluation under live telemetry with a real
    // clock and report the median per-phase span, so BENCH_hotpath.json
    // records *where* the evaluation budget goes, not just its total.
    let mut phase_registry = Telemetry::new();
    let phase_metrics = EngineMetrics::register(&mut phase_registry);
    let wall = WallClock::default();
    let phase_obs = EngineObs::new(&phase_registry, &wall, phase_metrics);
    for _ in 0..32 {
        let _ = engine.run(
            &mut EvalRequest::topology(&t4x2)
                .workspace(&mut ws)
                .observe(phase_obs),
        );
    }
    for (phase, id) in [
        ("csi_prep", phase_metrics.csi_prep_us),
        ("precoding", phase_metrics.precoding_us),
        ("allocation", phase_metrics.allocation_us),
        ("sinr", phase_metrics.sinr_us),
    ] {
        let h = phase_registry.histogram_ref(id);
        let median_us = h.approx_quantile(0.5).unwrap_or(0);
        let mut out = String::new();
        Obj::new(&mut out)
            .field("type", &"phase")
            .field("name", &phase)
            .field("median_us", &median_us)
            .field("total_us", &h.sum())
            .field("spans", &h.count())
            .finish();
        println!(
            "phase {phase:<32} median {median_us:>6} us over {} spans",
            h.count()
        );
        println!("{out}");
    }

    // --- 4. suite throughput through the parallel runner -----------------
    // Batched (default) vs scalar reference kernels on the same mixed
    // suite: the headline number and the speedup the SoA refactor buys.
    let suite = mixed_suite(4);
    let mut scalar_params = params;
    scalar_params.kernel_mode = KernelMode::Scalar;
    c.bench_function("suite_mixed_12", |b| {
        b.iter(|| evaluate_parallel(black_box(&params), &suite, threads))
    });
    c.bench_function("suite_mixed_12_scalar", |b| {
        b.iter(|| evaluate_parallel(black_box(&scalar_params), &suite, threads))
    });
    let n = suite.len() as f64;
    let mut batched_tps = 0.0;
    let mut scalar_tps = 0.0;
    for (bench, slot) in [
        ("suite_mixed_12", &mut batched_tps),
        ("suite_mixed_12_scalar", &mut scalar_tps),
    ] {
        if let Some(r) = c.reports().iter().find(|r| r.name == bench) {
            let topos_per_sec = n / (r.median_ns / 1e9);
            *slot = topos_per_sec;
            let mut out = String::new();
            Obj::new(&mut out)
                .field("type", &"throughput")
                .field("name", &bench)
                .field("topologies_per_sec", &topos_per_sec)
                .field("threads", &threads)
                .finish();
            println!("thrpt {bench:<32} {topos_per_sec:.2} topologies/s");
            println!("{out}");
        }
    }
    if scalar_tps > 0.0 {
        let mut out = String::new();
        Obj::new(&mut out)
            .field("type", &"speedup")
            .field("name", &"batched_vs_scalar")
            .field("batched_topos_per_sec", &batched_tps)
            .field("scalar_topos_per_sec", &scalar_tps)
            .field("ratio", &(batched_tps / scalar_tps))
            .finish();
        println!(
            "speedup batched vs scalar            {:.2}x",
            batched_tps / scalar_tps
        );
        println!("{out}");
    }

    // Hard gate: >= 5x the pre-SoA 108 topologies/s baseline. Absolute so a
    // regression anywhere in the chain (kernels, allocator, runner) fails
    // the bench rather than silently eroding the figure-suite turnaround.
    const MIN_TOPOS_PER_SEC: f64 = 540.0;
    assert!(
        batched_tps >= MIN_TOPOS_PER_SEC,
        "suite throughput gate: {batched_tps:.2} topologies/s < {MIN_TOPOS_PER_SEC} \
         (5x the 108/s scalar-AoS baseline)"
    );

    // --- 5. daemon: warmed-epoch allocations + epoch throughput ----------
    // Two full single-threaded daemon runs that differ only in length: the
    // first covers every one-time allocation (session warmup, evolution
    // scratch, workspace growth, re-exchanges, block crossings), so the
    // second run's extra epochs are all steady-state. Their difference is
    // the allocations charged to warmed epochs, and the gate is zero.
    let daemon_suite = TopologySampler::default().suite(0xDAE_0, 4, AntennaConfig::CONSTRAINED_4X2);
    let warm_cfg = DaemonConfig {
        epochs: 300,
        force_active: true,
        checkpoint_every: 100_000,
        ..DaemonConfig::default()
    };
    let long_cfg = DaemonConfig {
        epochs: 600,
        ..warm_cfg
    };
    // Throwaway run first so process-global lazy init is paid before the
    // baseline is measured (otherwise the baseline over-counts).
    let _ = run_daemon(&params, &daemon_suite, &warm_cfg);
    let allocs_daemon_base = count_allocs(|| {
        let _ = black_box(run_daemon(&params, &daemon_suite, &warm_cfg));
    });
    let allocs_daemon_long = count_allocs(|| {
        let _ = black_box(run_daemon(&params, &daemon_suite, &long_cfg));
    });
    assert!(
        allocs_daemon_long >= allocs_daemon_base,
        "a longer daemon run cannot allocate less than its own prefix \
         ({allocs_daemon_long} < {allocs_daemon_base})"
    );
    let allocs_daemon_warm = allocs_daemon_long - allocs_daemon_base;
    report_allocs("daemon_warm_epochs", allocs_daemon_warm);
    assert_eq!(
        allocs_daemon_warm, 0,
        "warmed daemon epochs must be allocation-free (300 extra epochs \
         cost {allocs_daemon_warm} allocations)"
    );

    // Epoch throughput: a trace-driven (not force-active) run, so the
    // number reflects the amortized steady state the daemon is for --
    // cached allocations reused, the engine re-run only on staleness,
    // churn or coherence-block advance.
    let thr_cfg = DaemonConfig {
        epochs: 1_000,
        checkpoint_every: 100_000,
        ..DaemonConfig::default()
    };
    c.bench_function("daemon_1k_epochs", |b| {
        b.iter(|| run_daemon(black_box(&params), &daemon_suite, &thr_cfg))
    });
    if let Some(r) = c.reports().iter().find(|r| r.name == "daemon_1k_epochs") {
        let epochs_per_sec = thr_cfg.epochs as f64 / (r.median_ns / 1e9);
        let mut out = String::new();
        Obj::new(&mut out)
            .field("type", &"throughput")
            .field("name", &"daemon_epochs")
            .field("epochs_per_sec", &epochs_per_sec)
            .field("cells", &daemon_suite.len())
            .field("epoch_us", &thr_cfg.epoch_us)
            .finish();
        println!("thrpt daemon_epochs                   {epochs_per_sec:.0} epochs/s");
        println!("{out}");
    }

    c.final_summary();
}
