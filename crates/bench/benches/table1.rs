//! Table 1: throughput costs of MAC overhead for COPA concurrent/sequential
//! vs CSMA CTS-to-self and RTS/CTS, across coherence times.

use copa_bench::harness::{black_box, Criterion};
use copa_mac::overhead::{overhead_fraction, OverheadConfig, Scheme};
use copa_mac::{table1, Scheme as S};

fn print_reproduction() {
    let paper: [(f64, [f64; 4]); 3] = [
        (4.0, [9.3, 7.7, 2.7, 3.7]),
        (30.0, [5.1, 3.5, 2.7, 3.7]),
        (1000.0, [4.5, 2.8, 2.7, 3.7]),
    ];
    let rows = table1(&OverheadConfig::default());
    println!("== Table 1: MAC overhead (%) -- paper / measured ==");
    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>16}",
        "coherence", "COPA Conc", "COPA Seq", "CSMA CTS", "RTS/CTS"
    );
    for (row, (ms, p)) in rows.iter().zip(paper) {
        assert_eq!(row.coherence_ms, ms);
        println!(
            "{:>8}ms {:>7.1} / {:<6.1} {:>7.1} / {:<6.1} {:>7.1} / {:<6.1} {:>7.1} / {:<6.1}",
            ms,
            p[0],
            row.percent[0],
            p[1],
            row.percent[1],
            p[2],
            row.percent[2],
            p[3],
            row.percent[3]
        );
    }
    println!();
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("overhead_model_all_schemes", |b| {
        let cfg = OverheadConfig::default();
        b.iter(|| {
            for s in Scheme::ALL {
                black_box(overhead_fraction(s, &cfg, 30_000.0));
            }
        })
    });
    c.bench_function("table1_regeneration", |b| {
        let cfg = OverheadConfig::default();
        b.iter(|| black_box(table1(&cfg)))
    });
    let _ = S::CsmaCtsSelf; // re-exported alias exercised
    c.final_summary();
}
