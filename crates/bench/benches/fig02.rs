//! Figure 2: received power per OFDM subcarrier at two receive antennas.
//!
//! Prints the reproduced per-subcarrier power series (the narrow-band
//! fading that motivates per-subcarrier power allocation), then benchmarks
//! the channel synthesis kernel.

use copa_bench::harness::{black_box, Criterion};
use copa_channel::{FreqChannel, MultipathProfile};
use copa_num::SimRng;

fn print_reproduction() {
    let f = copa_sim::fig2(0xF16_02);
    println!("== Figure 2: rx power per subcarrier (dBm), one tx antenna ==");
    println!("(paper: ~30 dB swings across the band; antennas decorrelated)");
    println!("{:>4} {:>8} {:>8}", "sc", "ant1", "ant2");
    for (s, (a, b)) in f.ant1_dbm.iter().zip(&f.ant2_dbm).enumerate() {
        println!("{s:>4} {a:>8.1} {b:>8.1}");
    }
    let range = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    println!(
        "fading range: ant1 {:.1} dB, ant2 {:.1} dB\n",
        range(&f.ant1_dbm),
        range(&f.ant2_dbm)
    );
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("channel_synthesis_2x1", |b| {
        let mut rng = SimRng::seed_from(7);
        let profile = MultipathProfile::default();
        b.iter(|| black_box(FreqChannel::random(&mut rng, 2, 1, 1e-6, &profile)))
    });
    c.bench_function("channel_synthesis_2x4", |b| {
        let mut rng = SimRng::seed_from(8);
        let profile = MultipathProfile::default();
        b.iter(|| black_box(FreqChannel::random(&mut rng, 2, 4, 1e-6, &profile)))
    });
    c.final_summary();
}
