//! Model-validation bench: analytic BER chain vs the bit-true 802.11
//! baseband pipeline (Monte-Carlo), plus throughput of the bit pipeline.

use copa_bench::harness::{black_box, Criterion};
use copa_phy::baseband::Chain;
use copa_phy::mcs::Mcs;
use copa_phy::modulation::Modulation;
use copa_sim::validation::{validate_coded_chain, validate_uncoded_ber};

fn print_reproduction() {
    println!("== Validation: analytic uncoded BER vs bit-true simulation (AWGN) ==");
    println!(
        "{:<8} {:>7} {:>12} {:>12}",
        "mod", "SNR dB", "analytic", "simulated"
    );
    let points = [
        (Modulation::Bpsk, 4.0),
        (Modulation::Bpsk, 7.0),
        (Modulation::Qpsk, 7.0),
        (Modulation::Qpsk, 10.0),
        (Modulation::Qam16, 13.0),
        (Modulation::Qam16, 16.0),
        (Modulation::Qam64, 19.0),
        (Modulation::Qam64, 22.0),
    ];
    for p in validate_uncoded_ber(&points, 300_000, 0xD0) {
        println!(
            "{:<8} {:>7.1} {:>12.3e} {:>12.3e}",
            p.modulation, p.snr_db, p.analytic, p.simulated
        );
    }

    println!("\n== Validation: coded chain (fselective channel, ZF equalizer) ==");
    println!(
        "{:<28} {:>8} {:>13} {:>13} {:>8}",
        "mcs", "SNR dB", "analytic BER", "sim BER", "sim FER"
    );
    for (mcs, snr) in [
        (Mcs::TABLE[0], 2.0),
        (Mcs::TABLE[1], 5.0),
        (Mcs::TABLE[3], 10.0),
        (Mcs::TABLE[5], 16.0),
    ] {
        let p = validate_coded_chain(mcs, snr, 40, 4, 0xD1);
        println!(
            "{:<28} {:>8.1} {:>13.3e} {:>13.3e} {:>8.2}",
            p.mcs, p.mean_snr_db, p.analytic_ber, p.simulated_ber, p.simulated_fer
        );
    }
    println!("(the analytic chain is the paper's prediction methodology; agreement\n within an order of magnitude over the operating range validates it)\n");
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args().sample_size(20);
    c.bench_function("bit_true_tx_rx_mcs7_8symbols", |b| {
        let chain = Chain::new(Mcs::TABLE[7]);
        let payload = vec![1u8; chain.payload_capacity(8)];
        b.iter(|| {
            let frame = chain.transmit(&payload);
            black_box(chain.receive(&frame.symbols, payload.len()))
        })
    });
    c.final_summary();
}
