//! Micro-benchmarks of the numeric kernels underlying every experiment:
//! SVD, LU solves, FFT, BER/coding models, allocators, and CSI compression.
//! Not tied to a specific figure; useful for tracking performance when the
//! numerics change.

use copa_alloc::stream::{equi_sinr, mercury_best, waterfilling, StreamProblem};
use copa_bench::harness::{black_box, Criterion};
use copa_mac::csi_codec::{compress_csi, decompress_csi};
use copa_num::complex::C64;
use copa_num::fft::fft_in_place;
use copa_num::matrix::CMat;
use copa_num::solve::inverse;
use copa_num::svd::svd;
use copa_num::SimRng;
use copa_phy::coding::{coded_ber, encode, viterbi_decode, CodeRate};
use copa_phy::link::ThroughputModel;
use copa_phy::mmse_curves::MmseCurve;
use copa_phy::modulation::Modulation;

fn random_mat(rng: &mut SimRng, m: usize, n: usize) -> CMat {
    CMat::from_fn(m, n, |_, _| rng.randc())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();

    c.bench_function("svd_2x4_complex", |b| {
        let mut rng = SimRng::seed_from(1);
        let a = random_mat(&mut rng, 2, 4);
        b.iter(|| black_box(svd(&a)))
    });

    c.bench_function("svd_4x4_complex", |b| {
        let mut rng = SimRng::seed_from(2);
        let a = random_mat(&mut rng, 4, 4);
        b.iter(|| black_box(svd(&a)))
    });

    c.bench_function("lu_inverse_4x4", |b| {
        let mut rng = SimRng::seed_from(3);
        let a = random_mat(&mut rng, 4, 4);
        b.iter(|| black_box(inverse(&a).unwrap()))
    });

    c.bench_function("fft_64", |b| {
        let mut rng = SimRng::seed_from(4);
        let x: Vec<C64> = (0..64).map(|_| rng.randc()).collect();
        b.iter(|| {
            let mut y = x.clone();
            fft_in_place(&mut y);
            black_box(y)
        })
    });

    c.bench_function("coded_ber_all_rates", |b| {
        b.iter(|| {
            for r in CodeRate::ALL {
                black_box(coded_ber(1e-3, r));
            }
        })
    });

    c.bench_function("viterbi_decode_1000bits_r12", |b| {
        let mut rng = SimRng::seed_from(5);
        let bits: Vec<u8> = (0..1000).map(|_| (rng.next_u64() & 1) as u8).collect();
        let coded = encode(&bits, CodeRate::R12);
        b.iter(|| black_box(viterbi_decode(&coded, 1000, CodeRate::R12)))
    });

    let mk_problem = |seed: u64| {
        let mut rng = SimRng::seed_from(seed);
        let gains: Vec<f64> = (0..52)
            .map(|_| -rng.uniform().max(1e-12).ln() * 3e-8)
            .collect();
        StreamProblem::interference_free(gains, 1e-9 / 52.0, 15.8)
    };

    c.bench_function("alloc_equi_sinr", |b| {
        let p = mk_problem(6);
        let model = ThroughputModel::default();
        b.iter(|| black_box(equi_sinr(&p, &model, 0.9)))
    });

    c.bench_function("alloc_waterfilling", |b| {
        let p = mk_problem(7);
        let model = ThroughputModel::default();
        b.iter(|| black_box(waterfilling(&p, &model, 0.9)))
    });

    c.bench_function("alloc_mercury_best", |b| {
        let p = mk_problem(8);
        let model = ThroughputModel::default();
        let curves: Vec<MmseCurve> = Modulation::ALL.iter().map(|&m| MmseCurve::new(m)).collect();
        b.iter(|| black_box(mercury_best(&p, &curves, &model, 0.9)))
    });

    c.bench_function("csi_compress_decompress_2x4", |b| {
        let mut rng = SimRng::seed_from(9);
        let ch = copa_channel::FreqChannel::random(
            &mut rng,
            2,
            4,
            1e-6,
            &copa_channel::MultipathProfile::default(),
        );
        b.iter(|| black_box(decompress_csi(&compress_csi(&ch))))
    });

    c.final_summary();
}
