//! Figure 3: end-to-end effect of nulling on SINR, SNR and INR over the
//! 30-topology 4x2 suite, vs the paper's measurements.

use copa_bench::harness::{black_box, Criterion};
use copa_channel::{AntennaConfig, FreqChannel, MultipathProfile};
use copa_core::ScenarioParams;
use copa_num::SimRng;
use copa_precoding::nulling::null_toward;
use copa_sim::figures::Fig3;
use copa_sim::{fig3, standard_suite};

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    let f = fig3(&suite, &ScenarioParams::default());
    let (i_m, i_s) = Fig3::summary(&f.inr_reduction_db);
    let (s_m, s_s) = Fig3::summary(&f.snr_reduction_db);
    let (x_m, x_s) = Fig3::summary(&f.sinr_increase_db);
    println!("== Figure 3: effect of nulling, 30 topologies, 4x2 ==");
    println!("  {:<16} {:>14} {:>18}", "metric", "paper", "measured");
    println!(
        "  {:<16} {:>10} dB {:>10.1} +- {:.1} dB",
        "INR reduction", 27, i_m, i_s
    );
    println!(
        "  {:<16} {:>10} dB {:>10.1} +- {:.1} dB",
        "SNR reduction", -8, s_m, s_s
    );
    println!(
        "  {:<16} {:>10} dB {:>10.1} +- {:.1} dB",
        "SINR increase", 18, x_m, x_s
    );
    println!();
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("nulling_precoder_4x2_52sc", |b| {
        let mut rng = SimRng::seed_from(3);
        let profile = MultipathProfile::default();
        let own = FreqChannel::random(&mut rng, 2, 4, 1e-6, &profile);
        let victim = FreqChannel::random(&mut rng, 2, 4, 1e-6, &profile);
        b.iter(|| black_box(null_toward(&own, &victim, 2).unwrap()))
    });
    c.final_summary();
}
