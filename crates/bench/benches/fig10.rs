//! Figure 10: throughput CDF across 30 topologies -- two single-antenna AP/client pairs.
//! Prints paper-vs-measured means and the reproduced CDF series, then
//! benchmarks one strategy-engine evaluation.

use copa_bench::harness::{black_box, Criterion};
use copa_bench::{print_comparison, threads, FIG10_PAPER};
use copa_channel::AntennaConfig;
use copa_core::{Engine, EvalRequest, ScenarioParams};
use copa_sim::{fig10, standard_suite};

fn print_reproduction() {
    let suite = standard_suite(AntennaConfig::SINGLE);
    let params = ScenarioParams {
        include_mercury: true,
        ..Default::default()
    };
    let exp = fig10(&suite, &params, threads());
    print_comparison(&exp, &FIG10_PAPER);
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args().sample_size(10);
    c.bench_function("engine_evaluate_fig10", |b| {
        let suite = standard_suite(AntennaConfig::SINGLE);
        let engine = Engine::new(ScenarioParams::default());
        b.iter(|| {
            black_box(
                engine
                    .run(&mut EvalRequest::topology(&suite[0]))
                    .expect("valid topology"),
            )
        })
    });
    c.final_summary();
}
