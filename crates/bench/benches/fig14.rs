//! Figure 14: potential gains from one decoder per coding rate
//! (per-subcarrier rate adaptation), relative to 1-decoder CSMA, for the
//! 1x1 / 4x2 / 3x2 scenarios.

use copa_bench::harness::{black_box, Criterion};
use copa_channel::AntennaConfig;
use copa_core::ScenarioParams;
use copa_phy::link::ThroughputModel;
use copa_sim::{fig14_scenario, standard_suite};

fn print_reproduction() {
    println!("== Figure 14: % improvement over 1-decoder CSMA ==");
    println!(
        "{:<6} {:>10} {:>12} {:>8} {:>12} {:>8}",
        "scen", "CSMA-N", "fair-1dec", "COPA-1", "fair-Ndec", "COPA-N"
    );
    let params = ScenarioParams::default();
    for (label, cfg) in [
        ("1x1", AntennaConfig::SINGLE),
        ("4x2", AntennaConfig::CONSTRAINED_4X2),
        ("3x2", AntennaConfig::OVERCONSTRAINED_3X2),
    ] {
        let suite = standard_suite(cfg);
        let f = fig14_scenario(label, &suite, &params);
        println!(
            "{:<6} {:>9.1}% {:>11.1}% {:>7.1}% {:>11.1}% {:>7.1}%",
            f.scenario,
            f.improvement_pct[0],
            f.improvement_pct[1],
            f.improvement_pct[2],
            f.improvement_pct[3],
            f.improvement_pct[4]
        );
    }
    println!(
        "(paper: multi-decoder helps CSMA in 1x1 but not COPA; adds ~10% to COPA in 4x2,\n\
         ~5% in 3x2 -- COPA already realizes most of the gain with one decoder)\n"
    );
}

fn main() {
    print_reproduction();
    let mut c = Criterion::default().configure_from_args();
    c.bench_function("multi_decoder_goodput_104cells", |b| {
        let mut rng = copa_num::SimRng::seed_from(14);
        let cells: Vec<f64> = (0..104).map(|_| rng.uniform_range(1.0, 3000.0)).collect();
        let model = ThroughputModel::default();
        b.iter(|| black_box(model.multi_decoder_goodput(&cells, 0.9)))
    });
    c.final_summary();
}
