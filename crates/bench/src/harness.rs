//! Dependency-free benchmark harness (criterion-compatible surface).
//!
//! The workspace builds offline with zero external crates, so the bench
//! targets run on this small harness instead of `criterion`. The API
//! mirrors the subset the targets use -- [`Criterion::default`],
//! [`Criterion::configure_from_args`], [`Criterion::sample_size`],
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and
//! [`Criterion::final_summary`] -- so a bench file only swaps its import
//! line.
//!
//! # Measurement model
//!
//! Per benchmark: a wall-clock warmup, a calibration that picks an
//! iteration count `k` so one sample lasts roughly the sample target,
//! then `sample_size` timed samples of `k` iterations each. Reported
//! statistics are the **median** per-iteration time and the **MAD**
//! (median absolute deviation) across samples -- robust to scheduler
//! noise, unlike mean/stddev.
//!
//! # Output
//!
//! Each benchmark prints one human-readable line and one machine-readable
//! JSON line (prefixed for easy grepping):
//!
//! ```text
//! bench svd_2x4_complex            median 12.46 µs  (MAD 0.02 µs, 50 x 803 iters)
//! {"type":"bench","name":"svd_2x4_complex","median_ns":12458.3,...}
//! ```
//!
//! Set `COPA_BENCH_FAST=1` to shrink warmup/samples for smoke runs (CI),
//! and pass a substring argument to run a subset of benchmarks:
//! `cargo bench --bench kernels -- svd`.

use copa_sim::json::{Obj, ToJson};
use std::time::Instant;

pub use std::hint::black_box;

/// One benchmark's collected statistics.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Benchmark name.
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of per-iteration sample times, ns.
    pub mad_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (calibrated).
    pub iters_per_sample: u64,
}

impl ToJson for BenchReport {
    fn write_json(&self, out: &mut String) {
        Obj::new(out)
            .field("type", &"bench")
            .field("name", &self.name)
            .field("median_ns", &self.median_ns)
            .field("mad_ns", &self.mad_ns)
            .field("samples", &self.samples)
            .field("iters_per_sample", &self.iters_per_sample)
            .finish();
    }
}

/// The harness: configure, then call [`bench_function`](Self::bench_function)
/// per benchmark.
pub struct Criterion {
    sample_size: usize,
    warmup_ns: u64,
    sample_target_ns: u64,
    filter: Option<String>,
    reports: Vec<BenchReport>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 50,
            warmup_ns: 200_000_000,
            sample_target_ns: 10_000_000,
            filter: None,
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies CLI arguments (a bare substring filters benchmark names;
    /// cargo-bench bookkeeping flags are ignored) and the
    /// `COPA_BENCH_FAST` smoke-run mode.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Flags cargo bench forwards that we accept and ignore.
                "--bench" | "--exact" | "--nocapture" | "--quiet" => {}
                "--quick" | "--fast" => self = self.fast(),
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        if std::env::var("COPA_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty()) {
            self = self.fast();
        }
        self
    }

    /// Shrinks warmup and sampling for smoke runs.
    pub fn fast(mut self) -> Self {
        self.sample_size = self.sample_size.min(10);
        self.warmup_ns = 5_000_000;
        self.sample_target_ns = 1_000_000;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine to measure.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            warmup_ns: self.warmup_ns,
            sample_target_ns: self.sample_target_ns,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        let report = b.report(name);
        println!(
            "bench {:<32} median {:>10}  (MAD {}, {} x {} iters)",
            report.name,
            fmt_ns(report.median_ns),
            fmt_ns(report.mad_ns),
            report.samples,
            report.iters_per_sample,
        );
        println!("{}", report.to_json());
        self.reports.push(report);
        self
    }

    /// All reports collected so far.
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }

    /// Prints the run summary (one JSON line with every benchmark).
    pub fn final_summary(&self) {
        let mut out = String::new();
        Obj::new(&mut out)
            .field("type", &"bench_summary")
            .field("benchmarks", &self.reports.iter().collect::<Vec<_>>())
            .finish();
        println!("{out}");
    }
}

/// Handed to the closure of [`Criterion::bench_function`]; owns the timing
/// loop.
pub struct Bencher {
    warmup_ns: u64,
    sample_target_ns: u64,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `routine`: warmup, calibration, then
    /// `sample_size` samples of `k` iterations each.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup until the budget elapses (at least one call), tracking
        // the per-iteration time for calibration.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed().as_nanos() as u64 >= self.warmup_ns {
                break;
            }
        }
        let per_iter_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        let k = ((self.sample_target_ns as f64 / per_iter_ns).round() as u64).max(1);
        self.iters_per_sample = k;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..k {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / k as f64);
        }
    }

    fn report(self, name: &str) -> BenchReport {
        assert!(
            !self.samples_ns.is_empty(),
            "bench_function closure must call Bencher::iter"
        );
        let med = median(&self.samples_ns);
        let deviations: Vec<f64> = self.samples_ns.iter().map(|&x| (x - med).abs()).collect();
        BenchReport {
            name: name.to_string(),
            median_ns: med,
            mad_ns: median(&deviations),
            samples: self.samples_ns.len(),
            iters_per_sample: self.iters_per_sample,
        }
    }
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default().fast().sample_size(5)
    }

    #[test]
    fn bench_function_produces_sane_report() {
        let mut c = fast_criterion();
        c.bench_function("spin", |b| b.iter(|| black_box((0..100).sum::<u64>())));
        let r = &c.reports()[0];
        assert_eq!(r.name, "spin");
        assert!(r.median_ns > 0.0);
        assert!(r.mad_ns >= 0.0);
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
        c.final_summary();
    }

    #[test]
    fn report_serializes_as_json_line() {
        let r = BenchReport {
            name: "svd".into(),
            median_ns: 1234.5,
            mad_ns: 1.25,
            samples: 50,
            iters_per_sample: 10,
        };
        assert_eq!(
            r.to_json(),
            r#"{"type":"bench","name":"svd","median_ns":1234.5,"mad_ns":1.25,"samples":50,"iters_per_sample":10}"#
        );
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
