//! Developer tool: wall-clock cost of one engine evaluation (plain vs
//! mercury/COPA+).
use copa_channel::AntennaConfig;
use copa_core::{Engine, EvalRequest, ScenarioParams};
use copa_sim::standard_suite;
use std::time::Instant;

fn main() {
    let suite = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    let t = Instant::now();
    let e = Engine::new(ScenarioParams::default());
    let _ = e.run(&mut EvalRequest::topology(&suite[0]));
    println!("plain eval: {:?}", t.elapsed());
    let t = Instant::now();
    let e = Engine::new(ScenarioParams {
        include_mercury: true,
        ..Default::default()
    });
    println!("engine+curves built: {:?}", t.elapsed());
    let t = Instant::now();
    let _ = e.run(&mut EvalRequest::topology(&suite[0]));
    println!("mercury eval: {:?}", t.elapsed());
}
