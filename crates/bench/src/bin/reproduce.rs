//! One-shot reproduction summary: regenerates the headline tables/figures
//! and prints them against the paper's numbers (the individual bench
//! targets give the full detail).
use copa_channel::AntennaConfig;
use copa_core::ScenarioParams;
use copa_sim::{
    fig10, fig11, fig12, fig13, fig3, headline_stats, render_experiment, standard_suite,
};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let params = ScenarioParams {
        include_mercury: true,
        ..Default::default()
    };

    let s4 = standard_suite(AntennaConfig::CONSTRAINED_4X2);
    let f3 = fig3(&s4, &params);
    println!("{}", copa_sim::report::render_fig3(&f3));

    let e11 = fig11(&s4, &params, threads);
    println!("{}", render_experiment(&e11));
    let h = headline_stats(&e11).expect("fig11 has CSMA/Null/COPA series");
    println!(
        "Null worse than CSMA: {:.0}% (paper 83%)",
        h.null_worse_than_csma * 100.0
    );
    println!(
        "COPA over Null mean:  {:.0}% (paper 54-64%)",
        h.copa_over_null_mean * 100.0
    );
    println!(
        "COPA beats CSMA:      {:.0}% (paper 76%)",
        h.copa_beats_csma * 100.0
    );

    let e12 = fig12(&s4, &params, threads);
    println!("{}", render_experiment(&e12));

    let s1 = standard_suite(AntennaConfig::SINGLE);
    let e10 = fig10(&s1, &params, threads);
    println!("{}", render_experiment(&e10));

    let s3 = standard_suite(AntennaConfig::OVERCONSTRAINED_3X2);
    let e13 = fig13(&s3, &params, threads);
    println!("{}", render_experiment(&e13));

    for row in copa_mac::table1(&copa_mac::OverheadConfig::default()) {
        println!(
            "Table1 {}ms: {:.1} {:.1} {:.1} {:.1}",
            row.coherence_ms, row.percent[0], row.percent[1], row.percent[2], row.percent[3]
        );
    }
}
