//! Shared scaffolding for the benchmark harness.
//!
//! Every bench target regenerates one of the paper's tables or figures:
//! it prints the reproduced rows/series next to the paper's published
//! numbers (shape comparison), then runs a Criterion measurement of the
//! computational kernel behind that experiment.

pub mod harness;

use copa_sim::throughput::ThroughputExperiment;

/// Paper-published mean throughputs (Mbps) for the CDF figures, in the
/// order the legends list them.
pub struct PaperMeans {
    /// Figure label.
    pub label: &'static str,
    /// `(scheme name, paper mean Mbps)`.
    pub means: &'static [(&'static str, f64)],
}

/// Figure 10 legend values (single antenna).
pub const FIG10_PAPER: PaperMeans = PaperMeans {
    label: "Figure 10 (1x1)",
    means: &[
        ("CSMA", 47.7),
        ("COPA-SEQ", 51.6),
        ("COPA fair", 53.3),
        ("COPA", 54.7),
        ("COPA+ fair", 53.7),
        ("COPA+", 55.0),
    ],
};

/// Figure 11 legend values (4x2 constrained).
pub const FIG11_PAPER: PaperMeans = PaperMeans {
    label: "Figure 11 (4x2)",
    means: &[
        ("CSMA", 110.1),
        ("COPA-SEQ", 110.4),
        ("Null", 83.1),
        ("COPA fair", 123.9),
        ("COPA", 128.1),
        ("COPA+ fair", 132.0),
        ("COPA+", 136.2),
    ],
};

/// Figure 12 legend values (4x2, interference -10 dB).
pub const FIG12_PAPER: PaperMeans = PaperMeans {
    label: "Figure 12 (4x2, weak interference)",
    means: &[
        ("CSMA", 110.1),
        ("COPA-SEQ", 110.4),
        ("Null", 131.7),
        ("COPA fair", 175.8),
        ("COPA", 178.8),
        ("COPA+ fair", 184.4),
        ("COPA+", 185.9),
    ],
};

/// Figure 13 legend values (3x2 overconstrained).
pub const FIG13_PAPER: PaperMeans = PaperMeans {
    label: "Figure 13 (3x2)",
    means: &[
        ("CSMA", 104.1),
        ("COPA-SEQ", 108.9),
        ("Null", 87.4), // "Null+SDA" in the paper
        ("COPA fair", 117.8),
        ("COPA", 121.6),
        ("COPA+ fair", 122.9),
        ("COPA+", 126.4),
    ],
};

/// Prints a measured-vs-paper comparison table for a CDF experiment.
pub fn print_comparison(exp: &ThroughputExperiment, paper: &PaperMeans) {
    println!("== {} : paper vs reproduction ==", paper.label);
    println!("  {:<12} {:>10} {:>10}", "scheme", "paper", "measured");
    for (name, paper_mean) in paper.means {
        match exp.series(name) {
            Some(s) => println!(
                "  {:<12} {:>8.1} M {:>8.1} M",
                name,
                paper_mean,
                s.mean_mbps()
            ),
            None => println!("  {:<12} {:>8.1} M {:>10}", name, paper_mean, "-"),
        }
    }
    println!();
    println!("{}", copa_sim::render_experiment(exp));
}

/// Number of worker threads for suite evaluation.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
