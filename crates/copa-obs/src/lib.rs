//! # copa-obs
//!
//! Zero-dependency observability for the COPA workspace: lock-free
//! [`Counter`]s, fixed-bucket log-scale [`Histogram`]s, span timing
//! against an injectable clock, a [`Telemetry`] registry that serializes
//! through the in-repo [`json`] writer, and optional chrome-trace event
//! export.
//!
//! Design rules, in the same discipline as `SuiteHealth` in `copa-sim`:
//!
//! * **Merge is commutative and associative.** Counters and histogram
//!   buckets merge with saturating sums; histogram min/max take extremes.
//!   Merged telemetry is invariant to how samples were sharded across
//!   workers, so reports do not depend on thread count.
//! * **Pay for what you use.** Recording sites talk to a `&dyn`
//!   [`Sink`]; with the [`NoopSink`] every call is a no-op, sites skip
//!   clock reads entirely ([`time_span`] checks [`Sink::enabled`]
//!   first), and the hot path keeps its exact allocation count.
//! * **No wall-clock reads on the hot path.** Span timing goes through
//!   [`ObsClock`]; tests inject [`FrozenClock`] for bit-identical
//!   telemetry at any thread count, production adapts its scheduler
//!   clock.
//!
//! ```
//! use copa_obs::{json::ToJson, Sink, Telemetry, TickClock, time_span};
//!
//! let mut tel = Telemetry::new().with_trace(64);
//! let frames = tel.counter("frames_sent");
//! let phase = tel.histogram("precoding_us");
//! let clock = TickClock::new(7);
//!
//! tel.add(frames, 3);
//! time_span(&tel, &clock, phase, "precoding", "engine", 0, || { /* work */ });
//!
//! let json = tel.to_json();
//! assert!(json.contains("\"frames_sent\":3"));
//! assert_eq!(tel.trace().map(|t| t.len()), Some(1));
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{Counter, CounterId, Histogram, HistogramId, NoopSink, Sink, Telemetry, BUCKETS};
pub use span::{time_span, FrozenClock, ObsClock, SpanTimer, TickClock, WallClock};
pub use trace::{validate_chrome_trace, TraceBuffer, TraceEvent};
