//! Lock-free counters, fixed-bucket log-scale histograms, and the
//! [`Telemetry`] registry that owns them.
//!
//! The merge discipline mirrors `SuiteHealth` in `copa-sim`: every metric
//! merges with saturating sums (plus min/max for histograms), so merged
//! values are commutative, associative, and invariant to how samples were
//! sharded across workers. A single registry can also be shared directly
//! across threads -- all recording goes through relaxed atomics -- which
//! gives the same totals as per-worker partials merged afterwards.

use crate::json::{write_str, Obj, ToJson};
use crate::trace::{TraceBuffer, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one zero bucket plus one per power of two.
pub const BUCKETS: usize = 64;

/// Handle to a registered [`Counter`]; returned by [`Telemetry::counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a registered [`Histogram`]; returned by
/// [`Telemetry::histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// A saturating, lock-free event counter.
///
/// `add` saturates at `u64::MAX` instead of wrapping, so a merged total
/// can never appear smaller than one of its parts.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

/// Saturating atomic add: CAS loop so concurrent adds near the ceiling
/// clamp instead of wrapping.
fn saturating_fetch_add(cell: &AtomicU64, delta: u64) {
    if delta == 0 {
        return;
    }
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(delta);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `delta`, saturating at `u64::MAX`.
    pub fn add(&self, delta: u64) {
        saturating_fetch_add(&self.value, delta);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds `other` into `self` (saturating sum). Commutative and
    /// associative in the resulting value.
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A fixed-bucket log2-scale histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i` (1..=63) holds samples in
/// `[2^(i-1), 2^i - 1]`, with the last bucket extending to `u64::MAX`.
/// Alongside the buckets it tracks count, saturating sum, min, and max,
/// all with relaxed atomics so recording is lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else if i >= BUCKETS - 1 {
            (1u64 << (BUCKETS - 2), u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, value);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Occupancy of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or `None` when empty. Coarse by construction:
    /// resolution is one power of two.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen = seen.saturating_add(self.bucket(i));
            if seen >= rank {
                return Some(
                    Self::bucket_bounds(i)
                        .1
                        .min(self.max.load(Ordering::Relaxed)),
                );
            }
        }
        self.max()
    }

    /// Folds `other` into `self`: buckets/count/sum add (saturating),
    /// min/max take the extremes. Commutative and associative in the
    /// resulting state.
    pub fn merge(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            saturating_fetch_add(&self.buckets[i], other.bucket(i));
        }
        saturating_fetch_add(&self.count, other.count());
        saturating_fetch_add(&self.sum, other.sum());
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl ToJson for Histogram {
    /// Emits count/sum/min/max plus the occupied buckets as
    /// `[lo, hi, n]` triples (empty buckets are omitted).
    fn write_json(&self, out: &mut String) {
        let mut triples = String::new();
        triples.push('[');
        let mut any = false;
        for i in 0..BUCKETS {
            let n = self.bucket(i);
            if n == 0 {
                continue;
            }
            if any {
                triples.push(',');
            }
            any = true;
            let (lo, hi) = Self::bucket_bounds(i);
            triples.push_str(&format!("[{lo},{hi},{n}]"));
        }
        triples.push(']');
        Obj::new(out)
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("buckets", &RawJson(&triples))
            .finish();
    }
}

/// Pre-rendered JSON fragment, spliced verbatim.
struct RawJson<'a>(&'a str);

impl ToJson for RawJson<'_> {
    fn write_json(&self, out: &mut String) {
        out.push_str(self.0);
    }
}

struct Named<T> {
    name: &'static str,
    metric: T,
}

/// A registry of named counters and histograms, with an optional
/// chrome-trace event buffer.
///
/// Registration (`counter` / `histogram`) requires `&mut self` and
/// returns a stable handle; recording through the [`Sink`] impl is
/// `&self` and lock-free, so one registry can be shared across worker
/// threads. [`Telemetry::merge`] folds another registry in by metric
/// name, matching the `SuiteHealth` discipline: merged JSON is invariant
/// to worker count and merge order.
#[derive(Default)]
pub struct Telemetry {
    counters: Vec<Named<Counter>>,
    histograms: Vec<Named<Histogram>>,
    trace: Option<TraceBuffer>,
}

impl Telemetry {
    /// An empty registry with tracing disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables chrome-trace event capture, keeping at most `cap` events.
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.trace = Some(TraceBuffer::new(cap));
        self
    }

    /// Registers (or finds) the counter called `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|c| c.name == name) {
            return CounterId(i);
        }
        self.counters.push(Named {
            name,
            metric: Counter::new(),
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) the histogram called `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        self.histograms.push(Named {
            name,
            metric: Histogram::new(),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// A zeroed registry with the same metric names (and trace setting),
    /// for per-worker partials that will be merged later.
    pub fn clone_schema(&self) -> Telemetry {
        let mut t = Telemetry::new();
        for c in &self.counters {
            t.counter(c.name);
        }
        for h in &self.histograms {
            t.histogram(h.name);
        }
        if let Some(trace) = &self.trace {
            t.trace = Some(TraceBuffer::new(trace.capacity()));
        }
        t
    }

    /// Current value of a registered counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].metric.get()
    }

    /// Read access to a registered histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].metric
    }

    /// Looks a counter up by name (for readers that only have the JSON
    /// schema, e.g. validation tools).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.metric.get())
    }

    /// The trace buffer, when tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Folds `other` into `self` by metric name; names missing from
    /// `self` are registered on the fly. The merged values are
    /// commutative and associative, and [`Telemetry::to_json`] sorts by
    /// name, so merged JSON is invariant to merge order and sharding.
    /// Trace events are *not* merged -- traces are per-run artifacts.
    pub fn merge(&mut self, other: &Telemetry) {
        for c in &other.counters {
            let id = self.counter(c.name);
            self.counters[id.0].metric.merge(&c.metric);
        }
        for h in &other.histograms {
            let id = self.histogram(h.name);
            self.histograms[id.0].metric.merge(&h.metric);
        }
    }
}

impl ToJson for Telemetry {
    /// Canonical form: `{"counters":{...},"histograms":{...}}` with keys
    /// sorted by name, so two registries with equal merged state emit
    /// byte-identical JSON regardless of registration order.
    fn write_json(&self, out: &mut String) {
        let mut cs: Vec<&Named<Counter>> = self.counters.iter().collect();
        cs.sort_by_key(|c| c.name);
        let mut hs: Vec<&Named<Histogram>> = self.histograms.iter().collect();
        hs.sort_by_key(|h| h.name);
        out.push_str("{\"counters\":{");
        for (i, c) in cs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, c.name);
            out.push(':');
            c.metric.get().write_json(out);
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in hs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, h.name);
            out.push(':');
            h.metric.write_json(out);
        }
        out.push_str("}}");
    }
}

/// Where recording sites send their events.
///
/// Instrumented code holds a `&dyn Sink` and never knows whether it is
/// talking to a live [`Telemetry`] registry or the [`NoopSink`]. Sites
/// that would pay for timestamping must check [`Sink::enabled`] first so
/// the noop path performs no clock reads and no work at all.
pub trait Sink: Sync {
    /// Whether events are recorded at all. Sites gate clock reads and any
    /// other preparatory work on this.
    fn enabled(&self) -> bool;

    /// Adds `delta` to a counter.
    fn add(&self, id: CounterId, delta: u64);

    /// Records one histogram sample.
    fn record(&self, id: HistogramId, value: u64);

    /// Records a completed span: duration into `hist`, and a chrome-trace
    /// event (if tracing is on) named `name` in category `cat` on logical
    /// track `tid`.
    fn span(
        &self,
        hist: HistogramId,
        name: &'static str,
        cat: &'static str,
        start_us: u64,
        dur_us: u64,
        tid: u32,
    );
}

/// The pay-nothing sink: disabled, and every record call is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _id: CounterId, _delta: u64) {}

    fn record(&self, _id: HistogramId, _value: u64) {}

    fn span(
        &self,
        _hist: HistogramId,
        _name: &'static str,
        _cat: &'static str,
        _start_us: u64,
        _dur_us: u64,
        _tid: u32,
    ) {
    }
}

impl Sink for Telemetry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, id: CounterId, delta: u64) {
        if let Some(c) = self.counters.get(id.0) {
            c.metric.add(delta);
        }
    }

    fn record(&self, id: HistogramId, value: u64) {
        if let Some(h) = self.histograms.get(id.0) {
            h.metric.record(value);
        }
    }

    fn span(
        &self,
        hist: HistogramId,
        name: &'static str,
        cat: &'static str,
        start_us: u64,
        dur_us: u64,
        tid: u32,
    ) {
        self.record(hist, dur_us);
        if let Some(trace) = &self.trace {
            trace.push(TraceEvent {
                name,
                cat,
                ts_us: start_us,
                dur_us,
                tid,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            assert!(hi >= lo);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.approx_quantile(0.5), None);
        for v in [0, 1, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1104);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!(h.approx_quantile(1.0) >= Some(1000));
    }

    #[test]
    fn registry_roundtrip_and_merge() {
        let mut a = Telemetry::new();
        let ca = a.counter("frames");
        let ha = a.histogram("lat_us");
        a.add(ca, 2);
        a.record(ha, 7);
        let b = a.clone_schema();
        b.add(CounterId(0), 3);
        b.record(HistogramId(0), 9);
        a.merge(&b);
        assert_eq!(a.counter_value(ca), 5);
        assert_eq!(a.histogram_ref(ha).count(), 2);
        assert_eq!(a.counter_by_name("frames"), Some(5));
        let json = a.to_json();
        let doc = crate::json::parse(&json).expect("registry JSON parses");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("frames"))
                .and_then(crate::json::Value::as_u64),
            Some(5)
        );
    }

    #[test]
    fn noop_sink_is_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.add(CounterId(0), 1);
        s.record(HistogramId(0), 1);
        s.span(HistogramId(0), "x", "y", 0, 0, 0);
    }
}
