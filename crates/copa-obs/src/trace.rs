//! Chrome-trace-format export: per-topology / per-phase spans that open
//! directly in `chrome://tracing` or Perfetto.
//!
//! Events are complete-duration (`"ph":"X"`) entries inside the standard
//! `{"traceEvents":[...]}` envelope. The buffer is bounded: once `cap`
//! events are stored, further pushes are counted as dropped rather than
//! reallocating without limit, so tracing never changes the memory
//! profile of a long suite run unboundedly.

use crate::json::{parse, Obj, ToJson, Value};
use std::sync::Mutex;

/// One complete-duration trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `"precoding"`).
    pub name: &'static str,
    /// Category (e.g. `"engine"`, `"supervisor"`).
    pub cat: &'static str,
    /// Start timestamp, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Logical track (worker index or topology index).
    pub tid: u32,
}

impl ToJson for TraceEvent {
    fn write_json(&self, out: &mut String) {
        Obj::new(out)
            .field("name", &self.name)
            .field("cat", &self.cat)
            .field("ph", &"X")
            .field("ts", &self.ts_us)
            .field("dur", &self.dur_us)
            .field("pid", &0u64)
            .field("tid", &self.tid)
            .finish();
    }
}

/// A bounded, thread-safe buffer of trace events.
#[derive(Debug)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
    cap: usize,
    dropped: Mutex<u64>,
}

impl TraceBuffer {
    /// A buffer keeping at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            cap,
            dropped: Mutex::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends an event, or counts it as dropped when full. A poisoned
    /// lock (a recording thread panicked) degrades to dropping the event.
    pub fn push(&self, event: TraceEvent) {
        let mut events = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if events.len() < self.cap {
            events.push(event);
        } else {
            drop(events);
            let mut d = match self.dropped.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            *d = d.saturating_add(1);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match self.events.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        match self.dropped.lock() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Renders the chrome-trace JSON document.
    pub fn to_chrome_json(&self) -> String {
        let events = match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":");
        events.as_slice().write_json(&mut out);
        out.push('}');
        out
    }
}

/// Validates a chrome-trace document with the in-repo reader: parses it,
/// checks the envelope and per-event required fields, and returns the
/// event count.
pub fn validate_chrome_trace(doc: &str) -> Result<usize, String> {
    let v = parse(doc)?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("event {i} missing \"{key}\""));
            }
        }
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            return Err(format!("event {i} is not a complete-duration event"));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if e.get(key).and_then(Value::as_u64).is_none() {
                return Err(format!("event {i} \"{key}\" is not a non-negative integer"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            name: "phase",
            cat: "engine",
            ts_us: ts,
            dur_us: 5,
            tid: 1,
        }
    }

    #[test]
    fn export_validates() {
        let buf = TraceBuffer::new(8);
        buf.push(ev(0));
        buf.push(ev(10));
        let doc = buf.to_chrome_json();
        assert_eq!(validate_chrome_trace(&doc), Ok(2));
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let buf = TraceBuffer::new(1);
        buf.push(ev(0));
        buf.push(ev(1));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 1);
        assert!(!buf.is_empty());
    }

    #[test]
    fn validation_rejects_wrong_shapes() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"name":"x"}]}"#).is_err());
        let bad_ph =
            r#"{"traceEvents":[{"name":"x","cat":"c","ph":"B","ts":0,"dur":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad_ph).is_err());
    }
}
