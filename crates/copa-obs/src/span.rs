//! Span timing against an injectable clock.
//!
//! Instrumented code never reads the wall clock directly: it is handed a
//! `&dyn ObsClock`, so tests and the determinism suite can substitute a
//! deterministic clock and get bit-identical telemetry at any thread
//! count. Production callers adapt their scheduler clock (`SuiteClock` in
//! `copa-sim`) or use [`WallClock`].

use crate::metrics::{HistogramId, Sink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Microsecond clock for span timing.
pub trait ObsClock: Sync {
    /// Current time in microseconds from an arbitrary origin.
    fn now_us(&self) -> u64;
}

/// Real monotonic time ([`Instant`]-based).
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl ObsClock for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A clock frozen at a fixed instant: every span measures zero.
///
/// This is the clock the determinism tests inject -- durations become a
/// pure function of the program (all zero), so merged telemetry is
/// byte-identical across thread counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct FrozenClock(pub u64);

impl ObsClock for FrozenClock {
    fn now_us(&self) -> u64 {
        self.0
    }
}

/// A clock that advances by a fixed step on every read.
///
/// Deterministic for single-threaded use (examples, unit tests); under
/// concurrency the interleaving of reads is scheduler-dependent, so use
/// [`FrozenClock`] when cross-thread determinism matters.
#[derive(Debug)]
pub struct TickClock {
    now: AtomicU64,
    step: u64,
}

impl TickClock {
    /// A clock starting at zero that advances `step_us` per read.
    pub fn new(step_us: u64) -> Self {
        Self {
            now: AtomicU64::new(0),
            step: step_us,
        }
    }
}

impl ObsClock for TickClock {
    fn now_us(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed)
    }
}

/// An in-flight span: captures a start timestamp, measures on `stop`.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    start_us: u64,
}

impl SpanTimer {
    /// Starts a span now (one clock read).
    pub fn start(clock: &dyn ObsClock) -> Self {
        Self {
            start_us: clock.now_us(),
        }
    }

    /// Ends the span (second clock read); returns `(start_us, dur_us)`.
    pub fn stop(self, clock: &dyn ObsClock) -> (u64, u64) {
        let end = clock.now_us();
        (self.start_us, end.saturating_sub(self.start_us))
    }
}

/// Times `f` as a span when `sink` is enabled; otherwise calls `f` with
/// zero overhead (no clock reads, no recording).
#[inline]
pub fn time_span<R>(
    sink: &dyn Sink,
    clock: &dyn ObsClock,
    hist: HistogramId,
    name: &'static str,
    cat: &'static str,
    tid: u32,
    f: impl FnOnce() -> R,
) -> R {
    if !sink.enabled() {
        return f();
    }
    let timer = SpanTimer::start(clock);
    let out = f();
    let (start, dur) = timer.stop(clock);
    sink.span(hist, name, cat, start, dur, tid);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{NoopSink, Telemetry};

    #[test]
    fn tick_clock_measures_steps() {
        let clock = TickClock::new(10);
        let t = SpanTimer::start(&clock);
        let (start, dur) = t.stop(&clock);
        assert_eq!(start, 0);
        assert_eq!(dur, 10);
    }

    #[test]
    fn frozen_clock_measures_zero() {
        let clock = FrozenClock(42);
        let t = SpanTimer::start(&clock);
        assert_eq!(t.stop(&clock), (42, 0));
    }

    #[test]
    fn time_span_records_into_histogram() {
        let mut tel = Telemetry::new();
        let h = tel.histogram("phase_us");
        let clock = TickClock::new(3);
        let out = time_span(&tel, &clock, h, "phase", "test", 0, || 7);
        assert_eq!(out, 7);
        assert_eq!(tel.histogram_ref(h).count(), 1);
        assert_eq!(tel.histogram_ref(h).sum(), 3);
    }

    #[test]
    fn noop_sink_skips_clock_reads() {
        struct PanicClock;
        impl ObsClock for PanicClock {
            fn now_us(&self) -> u64 {
                unreachable!("noop path must not read the clock")
            }
        }
        let mut tel = Telemetry::new();
        let h = tel.histogram("unused");
        drop(tel);
        let out = time_span(&NoopSink, &PanicClock, h, "x", "y", 0, || 1);
        assert_eq!(out, 1);
    }
}
