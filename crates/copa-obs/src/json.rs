//! Minimal hand-rolled JSON serialization for experiment reports, plus a
//! small reader used to validate emitted documents in-repo.
//!
//! The workspace is dependency-free, so instead of `serde` the report
//! structs implement [`ToJson`] by hand. The surface is deliberately tiny:
//! scalars, strings (with full escaping), sequences, options, and an
//! [`Obj`] builder for struct-like output. Non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity), and finite floats use Rust's
//! shortest round-trippable `Display` form.
//!
//! To serialize a new report struct, implement [`ToJson`] with the
//! builder:
//!
//! ```
//! use copa_obs::json::{Obj, ToJson};
//!
//! struct Point { x: f64, label: String }
//!
//! impl ToJson for Point {
//!     fn write_json(&self, out: &mut String) {
//!         Obj::new(out).field("x", &self.x).field("label", &self.label).finish();
//!     }
//! }
//!
//! assert_eq!(
//!     (Point { x: 1.5, label: "a\"b".into() }).to_json(),
//!     r#"{"x":1.5,"label":"a\"b"}"#
//! );
//! ```
//!
//! The [`parse`] function is the matching reader: it turns a JSON document
//! back into a [`Value`] tree so smoke checks and property tests can
//! validate what the writers emitted without any external tooling.

/// Types that can write themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: this value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Escapes and appends `s` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for u32 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for u8 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

/// Builder for a JSON object; fields are emitted in call order.
pub struct Obj<'a> {
    out: &'a mut String,
    any: bool,
}

impl<'a> Obj<'a> {
    /// Starts an object (`{`) on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        Self { out, any: false }
    }

    /// Appends one `"key":value` pair.
    pub fn field(mut self, key: &str, value: &dyn ToJson) -> Self {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        write_str(self.out, key);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    /// Closes the object (`}`).
    pub fn finish(self) {
        self.out.push('}');
    }
}

/// A parsed JSON value. Numbers are kept as `f64`, which is exact for the
/// integers the telemetry writers emit below 2^53 and for every power of
/// two (bucket boundaries) up to 2^63.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (duplicate keys preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields in document order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Errors carry a byte offset and a short
/// description; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // The source is valid UTF-8 and we only stop on ASCII bytes,
            // so the span boundary is always a char boundary.
            out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("truncated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u digits at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u digits at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!((-0.25f64).to_json(), "-0.25");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(3usize.to_json(), "3");
        assert_eq!(true.to_json(), "true");
        assert_eq!(Option::<f64>::None.to_json(), "null");
        assert_eq!(Some(2.0f64).to_json(), "2");
    }

    #[test]
    fn string_escaping() {
        assert_eq!("plain".to_json(), r#""plain""#);
        assert_eq!("a\"b\\c".to_json(), r#""a\"b\\c""#);
        assert_eq!("line\nbreak\ttab".to_json(), r#""line\nbreak\ttab""#);
        assert_eq!("\u{01}".to_json(), "\"\\u0001\"");
        assert_eq!("unicode: µ∆".to_json(), "\"unicode: µ∆\"");
    }

    #[test]
    fn sequences_and_tuples() {
        assert_eq!(vec![1.0f64, 2.5].to_json(), "[1,2.5]");
        assert_eq!([1.0f64; 3].to_json(), "[1,1,1]");
        assert_eq!((1.0f64, -2.0f64).to_json(), "[1,-2]");
        assert_eq!(Vec::<f64>::new().to_json(), "[]");
        assert_eq!(vec![Some(1.0f64), None].to_json(), "[1,null]");
    }

    #[test]
    fn object_builder_golden() {
        struct Nested {
            v: Vec<f64>,
        }
        impl ToJson for Nested {
            fn write_json(&self, out: &mut String) {
                Obj::new(out).field("v", &self.v).finish();
            }
        }
        struct Top {
            name: String,
            inner: Nested,
            count: usize,
        }
        impl ToJson for Top {
            fn write_json(&self, out: &mut String) {
                Obj::new(out)
                    .field("name", &self.name)
                    .field("inner", &self.inner)
                    .field("count", &self.count)
                    .finish();
            }
        }
        let t = Top {
            name: "fig \"x\"".into(),
            inner: Nested { v: vec![0.5, 1.0] },
            count: 2,
        };
        assert_eq!(
            t.to_json(),
            r#"{"name":"fig \"x\"","inner":{"v":[0.5,1]},"count":2}"#
        );
    }

    #[test]
    fn empty_object() {
        let mut s = String::new();
        Obj::new(&mut s).finish();
        assert_eq!(s, "{}");
    }

    #[test]
    fn float_formatting_round_trips() {
        for &x in &[0.1f64, 1e-12, 6.02e23, -0.0, 52.333333333333336] {
            let s = x.to_json();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s} should round-trip");
        }
    }

    #[test]
    fn reader_round_trips_writer_output() {
        let doc = r#"{"name":"fig \"x\"","inner":{"v":[0.5,1]},"count":2,"none":null,"ok":true}"#;
        let v = parse(doc).expect("valid doc");
        assert_eq!(v.get("name").and_then(Value::as_str), Some("fig \"x\""));
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("v"))
                .and_then(Value::as_arr),
            Some(&[Value::Num(0.5), Value::Num(1.0)][..])
        );
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn reader_rejects_malformed_docs() {
        for bad in [
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn reader_decodes_escapes() {
        let v = parse(r#""a\nb\t\u0041\\""#).expect("valid string");
        assert_eq!(v.as_str(), Some("a\nb\tA\\"));
    }

    #[test]
    fn powers_of_two_survive_the_f64_reader() {
        for shift in [0u32, 10, 30, 52, 62, 63] {
            let x = 1u64 << shift;
            let v = parse(&x.to_json()).expect("number");
            assert_eq!(v.as_u64(), Some(x), "2^{shift}");
        }
    }
}
