//! Property-based tests for the telemetry primitives, on the in-repo
//! [`copa_num::prop`] harness: the merge discipline must be commutative,
//! associative and sharding-invariant, counters must saturate rather than
//! wrap, and bucket boundaries must survive the JSON writer exactly.

use copa_num::prop::{check, Gen};
use copa_num::{prop_assert, prop_assert_eq};
use copa_obs::json::{parse, ToJson, Value};
use copa_obs::{Counter, Histogram, Sink, Telemetry, BUCKETS};

const CASES: usize = 64;

/// A u64 sample with varied magnitude: raw entropy shifted right by a
/// random amount, so small values, huge values, and zero all appear.
fn sample(g: &mut Gen) -> u64 {
    g.u64() >> g.usize_in(0, 64)
}

fn histogram_state(h: &Histogram) -> (u64, u64, Option<u64>, Option<u64>, Vec<u64>) {
    (
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        (0..BUCKETS).map(|i| h.bucket(i)).collect(),
    )
}

#[test]
fn counter_merge_is_commutative_associative_and_saturating() {
    check("counter merge", CASES, |g| {
        // Deltas biased toward the ceiling so saturation actually fires.
        let deltas: Vec<u64> = (0..g.usize_in(1, 12))
            .map(|_| {
                if g.bool() {
                    u64::MAX - (g.u64() >> 32)
                } else {
                    sample(g)
                }
            })
            .collect();
        let exact: u128 = deltas.iter().map(|&d| u128::from(d)).sum();
        let expect = u64::try_from(exact).unwrap_or(u64::MAX);

        // One counter taking every delta...
        let all = Counter::new();
        for &d in &deltas {
            all.add(d);
        }
        prop_assert_eq!(all.get(), expect, "single counter saturating sum");

        // ...equals any sharding merged in any order.
        let shards: Vec<Counter> = (0..3).map(|_| Counter::new()).collect();
        for &d in &deltas {
            shards[g.usize_in(0, 3)].add(d);
        }
        let left = Counter::new();
        for c in &shards {
            left.merge(c);
        }
        let right = Counter::new();
        for c in shards.iter().rev() {
            right.merge(c);
        }
        prop_assert_eq!(left.get(), expect, "merge order: forward");
        prop_assert_eq!(right.get(), expect, "merge order: reverse");
        // Saturation is a floor, never a wrap: the merged total can never
        // be smaller than any single shard.
        for c in &shards {
            prop_assert!(left.get() >= c.get(), "merged total below a part");
        }
        Ok(())
    });
}

#[test]
fn histogram_merge_is_sharding_invariant() {
    check("histogram sharding", CASES, |g| {
        let samples: Vec<u64> = (0..g.usize_in(1, 64)).map(|_| sample(g)).collect();

        let reference = Histogram::new();
        for &v in &samples {
            reference.record(v);
        }

        // Shard the same samples across k workers, merge in two orders.
        let k = g.usize_in(1, 5);
        let shards: Vec<Histogram> = (0..k).map(|_| Histogram::new()).collect();
        for &v in &samples {
            shards[g.usize_in(0, k)].record(v);
        }
        let forward = Histogram::new();
        for h in &shards {
            forward.merge(h);
        }
        let reverse = Histogram::new();
        for h in shards.iter().rev() {
            reverse.merge(h);
        }
        prop_assert_eq!(
            histogram_state(&forward),
            histogram_state(&reference),
            "sharded+merged must equal direct recording"
        );
        prop_assert_eq!(
            histogram_state(&forward),
            histogram_state(&reverse),
            "merge must commute"
        );

        // Associativity: (a + b) + c == a + (b + c) for a 3-way split.
        if k >= 3 {
            let ab = Histogram::new();
            ab.merge(&shards[0]);
            ab.merge(&shards[1]);
            let abc = Histogram::new();
            abc.merge(&ab);
            abc.merge(&shards[2]);
            let bc = Histogram::new();
            bc.merge(&shards[1]);
            bc.merge(&shards[2]);
            let abc2 = Histogram::new();
            abc2.merge(&shards[0]);
            abc2.merge(&bc);
            let mut partial = histogram_state(&abc);
            let partial2 = histogram_state(&abc2);
            // Only the first three shards were folded in: compare those.
            prop_assert_eq!(std::mem::take(&mut partial), partial2, "associativity");
        }
        Ok(())
    });
}

#[test]
fn bucket_bounds_round_trip_through_json() {
    check("bucket JSON round-trip", CASES, |g| {
        let h = Histogram::new();
        let n = g.usize_in(1, 48);
        for _ in 0..n {
            h.record(sample(g));
        }
        let doc = parse(&h.to_json()).map_err(|e| format!("histogram JSON must parse: {e}"))?;
        prop_assert_eq!(
            doc.get("count").and_then(Value::as_u64),
            Some(h.count()),
            "count field"
        );
        let buckets = doc
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or("buckets array missing")?;
        let occupied = (0..BUCKETS).filter(|&i| h.bucket(i) > 0).count();
        prop_assert_eq!(buckets.len(), occupied, "one triple per occupied bucket");
        for triple in buckets {
            let t = triple.as_arr().ok_or("bucket triple not an array")?;
            prop_assert_eq!(t.len(), 3, "triple arity");
            let lo = t[0].as_u64().ok_or("lo not u64")?;
            let hi = t[1].as_u64().ok_or("hi not u64")?;
            let count = t[2].as_u64().ok_or("count not u64")?;
            // Lower bounds are powers of two (exact in f64 up to 2^63),
            // so they must survive the writer/reader round trip exactly.
            let idx = Histogram::bucket_index(lo);
            let (want_lo, want_hi) = Histogram::bucket_bounds(idx);
            prop_assert_eq!(lo, want_lo, "lower bound of bucket {}", idx);
            // Upper bounds are `2^i - 1`: exact only within f64's 53-bit
            // integer range; beyond it the reader sees the nearest f64.
            if want_hi < (1u64 << 53) {
                prop_assert_eq!(hi, want_hi, "upper bound of bucket {}", idx);
            } else {
                prop_assert!(
                    t[1].as_f64() == Some(want_hi as f64),
                    "upper bound of bucket {} beyond 2^53",
                    idx
                );
            }
            prop_assert_eq!(count, h.bucket(idx), "occupancy of bucket {}", idx);
        }
        Ok(())
    });
}

#[test]
fn registry_json_is_invariant_to_registration_and_merge_order() {
    check("registry canonical JSON", CASES, |g| {
        let names: &[&'static str] = &["alpha.count", "beta.count", "gamma.lat_us"];
        // Registry A registers in order, B in reverse; both take the same
        // events, sharded differently via merge.
        let mut a = Telemetry::new();
        let ca: Vec<_> = names[..2].iter().map(|n| a.counter(n)).collect();
        let ha = a.histogram(names[2]);
        let mut b_shard = Telemetry::new();
        let hb = b_shard.histogram(names[2]);
        let cb: Vec<_> = names[..2]
            .iter()
            .rev()
            .map(|n| b_shard.counter(n))
            .collect();

        for _ in 0..g.usize_in(1, 32) {
            let v = sample(g);
            let which = g.usize_in(0, 3);
            // Mirror every event into both sides, A directly and B via its
            // own handles (registered in a different order).
            match which {
                0 | 1 => {
                    a.add(ca[which], v);
                    b_shard.add(cb[1 - which], v);
                }
                _ => {
                    a.record(ha, v);
                    b_shard.record(hb, v);
                }
            }
        }
        let mut merged = Telemetry::new();
        merged.merge(&b_shard);
        prop_assert_eq!(
            a.to_json(),
            merged.to_json(),
            "canonical JSON must not depend on registration or merge order"
        );
        Ok(())
    });
}
