#!/usr/bin/env bash
# Tier-1 verification gate for the COPA workspace.
#
# The workspace is hermetic: every dependency is a `path = ...` crate
# inside this repo, so the whole gate runs with `--offline` and must
# succeed on a machine with no crates.io access at all. This script is
# what CI (and the PR driver) runs; keep it green.
#
# Usage: scripts/check.sh [--bench-smoke] [--faults-smoke] [--resume-smoke]
#                         [--obs-smoke] [--campus-smoke] [--simd-smoke]
#                         [--daemon-smoke] [--chaos-smoke] [--waveform-smoke]
#   --bench-smoke   additionally run the hotpath benchmark in --quick mode
#                   and leave its JSON lines in BENCH_hotpath.json; every
#                   warmed-path alloc report must read exactly 0 (the bench
#                   itself also hard-asserts this and the >= 540 topo/s
#                   throughput floor).
#   --simd-smoke    additionally run the batched-vs-scalar bit-identity
#                   example (examples/simd_smoke.rs): a mixed 24-topology
#                   suite evaluated with both kernel modes must agree to
#                   the last mantissa bit.
#   --faults-smoke  additionally run one degraded-suite episode offline
#                   (240 topologies, 20% ITS frame loss) and require CSMA
#                   fallbacks to be reported without any panic.
#   --resume-smoke  additionally kill a journaled suite at 50% and resume
#                   it (examples/resumable_suite.rs), requiring the resumed
#                   JSON to be byte-identical, then run the hotpath bench's
#                   zero-allocation supervision guard.
#   --obs-smoke     additionally run the observed standard suite
#                   (examples/telemetry_suite.rs), requiring the merged
#                   registry JSON and chrome-trace export to validate, then
#                   run the hotpath bench's zero-allocation telemetry
#                   guards.
#   --campus-smoke  additionally run the dense-campus suite
#                   (examples/dense_campus.rs): a 50-AP clustered run with
#                   telemetry validated and a journaled 500-AP campus
#                   byte-identical across 1/2/8 threads, then run the
#                   hotpath bench's pair-cluster zero-allocation guard.
#   --daemon-smoke  additionally run the daemon soak
#                   (examples/daemon_soak.rs): ten simulated minutes of
#                   the event-driven coordination loop with bounded
#                   journal growth, byte-identical kill-and-resume, and
#                   zero heap allocations across warmed epochs.
#   --chaos-smoke   additionally run the chaos soak
#                   (examples/daemon_soak.rs --chaos): the same ten
#                   simulated minutes at 20% ITS frame loss with a seeded
#                   membership process — sessions degrade to CSMA and all
#                   recover, churn tears down / cold-starts sessions,
#                   kill-and-resume stays byte-identical, and warmed
#                   epochs between exchanges still allocate nothing.
#   --waveform-smoke additionally run the waveform validation example
#                   (examples/waveform_validation.rs): the Monte-Carlo
#                   IFFT/CP/sync/Viterbi grid re-parsed from its JSON,
#                   byte-identical across thread counts, measured FER
#                   within the stated band of the analytic union bound,
#                   and zero allocations across warmed frames.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
FAULTS_SMOKE=0
RESUME_SMOKE=0
OBS_SMOKE=0
CAMPUS_SMOKE=0
SIMD_SMOKE=0
DAEMON_SMOKE=0
CHAOS_SMOKE=0
WAVEFORM_SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --bench-smoke) BENCH_SMOKE=1 ;;
        --faults-smoke) FAULTS_SMOKE=1 ;;
        --resume-smoke) RESUME_SMOKE=1 ;;
        --obs-smoke) OBS_SMOKE=1 ;;
        --campus-smoke) CAMPUS_SMOKE=1 ;;
        --simd-smoke) SIMD_SMOKE=1 ;;
        --daemon-smoke) DAEMON_SMOKE=1 ;;
        --chaos-smoke) CHAOS_SMOKE=1 ;;
        --waveform-smoke) WAVEFORM_SMOKE=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> 1/7 hermeticity: no registry dependencies in any Cargo.toml"
bad=0
while IFS= read -r toml; do
    # Reject dotted dependency tables ([dependencies.foo]) outright --
    # the workspace convention is inline `foo = { path = "..." }`.
    if grep -nE '^\[(dev-|build-)?dependencies\.' "$toml"; then
        echo "error: $toml uses a dotted dependency table (use inline path deps)" >&2
        bad=1
    fi
    # Inside [dependencies]/[dev-dependencies]/[build-dependencies]
    # sections, every entry must carry `path` or `workspace = true`
    # (and [workspace.dependencies] entries must carry `path`).
    if ! awk -v toml="$toml" '
        /^\[/ {
            dep = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/)
            next
        }
        dep && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                printf "error: %s:%d: non-path dependency: %s\n", toml, NR, $0 > "/dev/stderr"
                exit 1
            }
        }
    ' "$toml"; then
        bad=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "hermeticity check FAILED: external dependencies are not allowed" >&2
    exit 1
fi
echo "    ok: all dependencies are in-repo path deps"

echo "==> 2/7 alloc-free kernel regions: no Vec::new / vec! reintroduced"
# Per-subcarrier kernels are bracketed by "alloc-free: begin <name>" /
# "alloc-free: end <name>" markers. Inside those regions, constructs that
# allocate per call are banned; scratch buffers must come from the caller.
if ! awk '
    /alloc-free: begin/ { inside = 1; region = $0 }
    inside && !/alloc-free:/ && !/^[[:space:]]*\/\// {
        if ($0 ~ /Vec::new\(|vec!|\.to_vec\(|with_capacity\(|Vec::from|CMat::zeros\(|\.clone\(\)/) {
            printf "error: %s:%d: allocation in alloc-free region (%s): %s\n", \
                FILENAME, FNR, region, $0 > "/dev/stderr"
            bad = 1
        }
    }
    /alloc-free: end/ { inside = 0 }
    END { exit bad }
' $(grep -rl 'alloc-free: begin' crates --include='*.rs'); then
    echo "alloc-free gate FAILED: per-subcarrier kernels must not allocate" >&2
    exit 1
fi
echo "    ok: $(grep -rh 'alloc-free: begin' crates --include='*.rs' | wc -l | tr -d ' ') marked kernel regions are allocation-free"

echo "==> 3/7 panic gate: no new unwrap()/panic! in library, example or test code"
# Library (non-test) code must not panic on user-reachable paths: fallible
# APIs return copa_core::CopaError, internal invariants use expect /
# debug_assert! with an "// invariant:" comment. The few deliberate panic
# sites carry an "// allowlisted:" comment and a file:count budget in
# scripts/panic_allowlist.txt; this gate fails when any crates/*/src,
# examples/ or tests/ file exceeds its budget (modules after #[cfg(test)]
# are exempt, as are #[test] assert! macros -- only unwrap()/panic! count).
panic_bad=0
while IFS= read -r f; do
    n=$(awk '/#\[cfg\(test\)\]/ { exit } { print }' "$f" \
        | grep -c 'unwrap(\|panic!' || true)
    budget=$( (grep "^$f:" scripts/panic_allowlist.txt || true) | tail -n1 | awk -F: '{print $NF}')
    budget=${budget:-0}
    if [ "$n" -gt "$budget" ]; then
        echo "error: $f: $n unwrap()/panic! site(s) in non-test code," \
             "budget $budget (scripts/panic_allowlist.txt)" >&2
        panic_bad=1
    fi
done < <({ find crates -path '*/src/*' -name '*.rs'; find examples tests -name '*.rs'; } | sort)
while IFS= read -r entry; do
    path=${entry%:*}
    if [ ! -f "$path" ]; then
        echo "error: stale allowlist entry: $path" >&2
        panic_bad=1
    fi
done < <(grep -v '^\s*#' scripts/panic_allowlist.txt | grep -v '^\s*$')
if [ "$panic_bad" -ne 0 ]; then
    echo "panic gate FAILED: convert to CopaError or budget the site in scripts/panic_allowlist.txt" >&2
    exit 1
fi
echo "    ok: library crates stay within the panic allowlist"

echo "==> 4/7 cargo fmt --check"
cargo fmt --check

echo "==> 5/7 cargo build --release --offline (workspace, benches included)"
cargo build --release --offline --workspace --benches

echo "==> 6/7 cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "==> 7/7 deprecation gate: no in-repo callers of deprecated APIs"
# Deprecated shims (e.g. the pre-supervisor evaluate* entry points) exist
# only for downstream compatibility; new in-repo code must use the
# replacements. A separate target dir keeps -D deprecated from thrashing
# the main build cache. #[allow(deprecated)] still works for the shims'
# own unit tests.
RUSTFLAGS="-D deprecated" CARGO_TARGET_DIR=target/deprecated \
    cargo check -q --offline --workspace --all-targets || {
    echo "deprecation gate FAILED: migrate off deprecated APIs (or #[allow(deprecated)] inside the shim's own tests)" >&2
    exit 1
}
echo "    ok: no deprecated-API uses outside allowed shims"

if [ "$BENCH_SMOKE" -eq 1 ]; then
    echo "==> bench smoke: hotpath --quick (JSON -> BENCH_hotpath.json)"
    cargo bench --offline -p copa-bench --bench hotpath -- --quick | tee BENCH_hotpath.json
    grep -q '"name"' BENCH_hotpath.json || {
        echo "bench smoke FAILED: no JSON lines in BENCH_hotpath.json" >&2
        exit 1
    }
    # Hard alloc gate: every warmed-path alloc report must read exactly 0.
    # (The bench asserts this too; re-checking the emitted JSON keeps the
    # gate honest even if the bench's own asserts are ever refactored.)
    for guard in evaluate_4x2_warm_ws evaluate_4x2_guarded evaluate_4x2_noop_obs \
                 evaluate_4x2_live_obs evaluate_pair_cluster_warm daemon_warm_epochs; do
        grep -q "\"name\":\"$guard\",\"allocs\":0}" BENCH_hotpath.json || {
            echo "bench smoke FAILED: warmed path '$guard' is not allocation-free" >&2
            exit 1
        }
    done
    grep -q '"type":"throughput","name":"suite_mixed_12"' BENCH_hotpath.json || {
        echo "bench smoke FAILED: suite throughput line missing" >&2
        exit 1
    }
    grep -q '"type":"throughput","name":"daemon_epochs"' BENCH_hotpath.json || {
        echo "bench smoke FAILED: daemon epoch-throughput line missing" >&2
        exit 1
    }
fi

if [ "$SIMD_SMOKE" -eq 1 ]; then
    echo "==> simd smoke: batched vs scalar kernels, bit-for-bit"
    out=$(cargo run --release --offline --example simd_smoke)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '^ok: batched SoA kernels are bit-identical' || {
        echo "simd smoke FAILED: batched kernels diverged from the scalar reference" >&2
        exit 1
    }
fi

if [ "$RESUME_SMOKE" -eq 1 ]; then
    echo "==> resume smoke: journaled suite killed at 50%, resumed, byte-diffed"
    out=$(cargo run --release --offline --example resumable_suite)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '^ok: kill-and-resume is byte-identical' || {
        echo "resume smoke FAILED: resumed run diverged from the reference" >&2
        exit 1
    }
    echo "==> resume smoke: supervision wrapper zero-allocation guard"
    guard=$(cargo bench --offline -p copa-bench --bench hotpath -- --quick)
    printf '%s\n' "$guard" | grep '^alloc '
    printf '%s\n' "$guard" | grep -q '"name":"evaluate_4x2_guarded"' || {
        echo "resume smoke FAILED: guarded-evaluation alloc report missing" >&2
        exit 1
    }
fi

if [ "$OBS_SMOKE" -eq 1 ]; then
    echo "==> obs smoke: observed standard suite, registry + trace validated"
    out=$(cargo run --release --offline --example telemetry_suite)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '^ok: telemetry export validated' || {
        echo "obs smoke FAILED: telemetry export did not validate" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '"suite.completed":30' || {
        echo "obs smoke FAILED: supervisor counters missing from registry JSON" >&2
        exit 1
    }
    echo "==> obs smoke: telemetry zero-allocation guards"
    guard=$(cargo bench --offline -p copa-bench --bench hotpath -- --quick)
    printf '%s\n' "$guard" | grep '^alloc '
    printf '%s\n' "$guard" | grep -q '"name":"evaluate_4x2_noop_obs"' || {
        echo "obs smoke FAILED: noop-sink alloc report missing" >&2
        exit 1
    }
    printf '%s\n' "$guard" | grep -q '"name":"evaluate_4x2_live_obs"' || {
        echo "obs smoke FAILED: live-sink alloc report missing" >&2
        exit 1
    }
fi

if [ "$CAMPUS_SMOKE" -eq 1 ]; then
    echo "==> campus smoke: 50-AP clustered suite + journaled 500-AP thread invariance"
    out=$(cargo run --release --offline --example dense_campus)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '^ok: dense campus smoke validated' || {
        echo "campus smoke FAILED: 50-AP clustered run did not validate" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: 500-AP campus byte-identical' || {
        echo "campus smoke FAILED: 500-AP report diverged across thread counts" >&2
        exit 1
    }
    echo "==> campus smoke: pair-cluster zero-allocation guard"
    guard=$(cargo bench --offline -p copa-bench --bench hotpath -- --quick)
    printf '%s\n' "$guard" | grep '^alloc '
    printf '%s\n' "$guard" | grep -q '"name":"evaluate_pair_cluster_warm"' || {
        echo "campus smoke FAILED: pair-cluster alloc report missing" >&2
        exit 1
    }
fi

if [ "$DAEMON_SMOKE" -eq 1 ]; then
    echo "==> daemon smoke: ten simulated minutes of the coordination daemon"
    out=$(cargo run --release --offline --example daemon_soak)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '^ok: daemon soak journal growth bounded' || {
        echo "daemon smoke FAILED: journal grew past its per-checkpoint budget" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: daemon kill-and-resume byte-identical' || {
        echo "daemon smoke FAILED: resumed daemon diverged from the reference" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: warmed daemon epochs allocation-free' || {
        echo "daemon smoke FAILED: warmed epochs allocated" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: daemon soak validated end to end' || {
        echo "daemon smoke FAILED: soak did not validate" >&2
        exit 1
    }
fi

if [ "$CHAOS_SMOKE" -eq 1 ]; then
    echo "==> chaos smoke: ten lossy, churning minutes of the coordination daemon"
    out=$(cargo run --release --offline --example daemon_soak -- --chaos)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '^ok: chaos degradations observed and recovered' || {
        echo "chaos smoke FAILED: no degradation/recovery cycle observed" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: chaos churn events exercised' || {
        echo "chaos smoke FAILED: the membership process did not fire" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: chaos kill-and-resume byte-identical' || {
        echo "chaos smoke FAILED: resumed chaos daemon diverged from the reference" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: warmed chaos epochs allocation-free' || {
        echo "chaos smoke FAILED: warmed chaos epochs allocated" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: daemon chaos soak validated end to end' || {
        echo "chaos smoke FAILED: chaos soak did not validate" >&2
        exit 1
    }
fi

if [ "$WAVEFORM_SMOKE" -eq 1 ]; then
    echo "==> waveform smoke: Monte-Carlo waveform FER vs the analytic model"
    out=$(cargo run --release --offline --example waveform_validation)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '^ok: waveform grid JSON re-parses' || {
        echo "waveform smoke FAILED: grid JSON did not re-parse" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: waveform grid byte-identical across thread counts' || {
        echo "waveform smoke FAILED: grid diverged across thread counts" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: waveform FER tracks the analytic union bound' || {
        echo "waveform smoke FAILED: measured FER left the analytic band" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: warmed waveform frames allocation-free' || {
        echo "waveform smoke FAILED: warmed frames allocated" >&2
        exit 1
    }
    printf '%s\n' "$out" | grep -q '^ok: waveform validation smoke passed' || {
        echo "waveform smoke FAILED: smoke did not validate" >&2
        exit 1
    }
fi

if [ "$FAULTS_SMOKE" -eq 1 ]; then
    echo "==> faults smoke: 240-topology degraded suite at 20% frame loss"
    out=$(cargo run --release --offline --example degraded_suite)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q '"csma_fallbacks":[1-9]' || {
        echo "faults smoke FAILED: no CSMA fallbacks reported" >&2
        exit 1
    }
fi

echo "==> all checks passed"
