#!/usr/bin/env bash
# Tier-1 verification gate for the COPA workspace.
#
# The workspace is hermetic: every dependency is a `path = ...` crate
# inside this repo, so the whole gate runs with `--offline` and must
# succeed on a machine with no crates.io access at all. This script is
# what CI (and the PR driver) runs; keep it green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> 1/4 hermeticity: no registry dependencies in any Cargo.toml"
bad=0
while IFS= read -r toml; do
    # Reject dotted dependency tables ([dependencies.foo]) outright --
    # the workspace convention is inline `foo = { path = "..." }`.
    if grep -nE '^\[(dev-|build-)?dependencies\.' "$toml"; then
        echo "error: $toml uses a dotted dependency table (use inline path deps)" >&2
        bad=1
    fi
    # Inside [dependencies]/[dev-dependencies]/[build-dependencies]
    # sections, every entry must carry `path` or `workspace = true`
    # (and [workspace.dependencies] entries must carry `path`).
    if ! awk -v toml="$toml" '
        /^\[/ {
            dep = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/)
            next
        }
        dep && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                printf "error: %s:%d: non-path dependency: %s\n", toml, NR, $0 > "/dev/stderr"
                exit 1
            }
        }
    ' "$toml"; then
        bad=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "hermeticity check FAILED: external dependencies are not allowed" >&2
    exit 1
fi
echo "    ok: all dependencies are in-repo path deps"

echo "==> 2/4 cargo fmt --check"
cargo fmt --check

echo "==> 3/4 cargo build --release --offline (workspace, benches included)"
cargo build --release --offline --workspace --benches

echo "==> 4/4 cargo test -q --offline (workspace)"
cargo test -q --offline --workspace

echo "==> all checks passed"
